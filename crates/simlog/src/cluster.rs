//! Discrete-event cluster simulation.
//!
//! [`ClusterSim`] drives a population of machines through fault arrivals
//! and policy-controlled recovery, emitting a [`RecoveryLog`] with exactly
//! the event grammar of the paper's production log: error symptoms, repair
//! actions, and `Success` reports. Faults arrive per machine as a Poisson
//! process (suspended while the machine is down); the recovery controller
//! consults a [`RecoveryPolicy`] after each failed attempt and gives up to
//! manual repair (`RMA`) after `max_attempts - 1` automated attempts, the
//! paper's `N = 20` episode cap (§3.2).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::RepairAction;
use crate::catalog::FaultCatalog;
use crate::dist::Exponential;
use crate::event::{LogEntry, LogEvent};
use crate::fault::FaultId;
use crate::log::RecoveryLog;
use crate::machine::MachineId;
use crate::policy::{PolicyContext, RecoveryPolicy};
use crate::symptom::SymptomId;
use crate::time::{SimDuration, SimTime};

/// Knobs of the cluster simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of machines in the cluster.
    pub machines: u32,
    /// How long new faults keep arriving; processes opened before the
    /// horizon run to completion.
    pub horizon: SimDuration,
    /// Mean fault inter-arrival time per healthy machine.
    pub mean_fault_interarrival: SimDuration,
    /// Episode cap: after `max_attempts - 1` automated attempts the
    /// controller forces `RMA`. The paper uses 20.
    pub max_attempts: usize,
    /// Probability that a process is *noisy*: a second, independent fault
    /// overlaps it, mixing two symptom sets (the paper's ≈3.33% of
    /// processes that its noise filter removes).
    pub noise_prob: f64,
    /// Probability that a failed attempt re-emits the primary symptom
    /// while the controller observes (Table 1 shows such repeats).
    pub re_emit_prob: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            machines: 100,
            horizon: SimDuration::from_days(60),
            mean_fault_interarrival: SimDuration::from_days(5),
            max_attempts: 20,
            noise_prob: 0.033,
            re_emit_prob: 0.6,
        }
    }
}

impl ClusterConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if there are no machines, the horizon is zero, the attempt
    /// cap is below 2 (one automated attempt plus the RMA fallback), or a
    /// probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.machines > 0, "cluster needs at least one machine");
        assert!(self.horizon > SimDuration::ZERO, "horizon must be positive");
        assert!(
            self.mean_fault_interarrival > SimDuration::ZERO,
            "inter-arrival mean must be positive"
        );
        assert!(
            self.max_attempts >= 2,
            "need room for at least one attempt plus RMA"
        );
        assert!(
            (0.0..=1.0).contains(&self.noise_prob),
            "noise_prob out of [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.re_emit_prob),
            "re_emit_prob out of [0, 1]"
        );
    }
}

/// Ground truth for one generated recovery process, keyed by
/// `(machine, process start time)` so it can be joined back to the
/// processes returned by [`RecoveryLog::split_processes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessTruth {
    /// The fault class that opened the process.
    pub fault: FaultId,
    /// The overlapping second fault, for noisy processes.
    pub overlay: Option<FaultId>,
}

/// Ground-truth side channel of a simulation run. The learning pipeline
/// never reads this; tests and experiment sanity checks do.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    by_process: HashMap<(MachineId, SimTime), ProcessTruth>,
}

impl GroundTruth {
    /// Looks up the truth for the process that started on `machine` at
    /// `start`.
    pub fn lookup(&self, machine: MachineId, start: SimTime) -> Option<ProcessTruth> {
        self.by_process.get(&(machine, start)).copied()
    }

    /// Number of recorded processes.
    pub fn len(&self) -> usize {
        self.by_process.len()
    }

    /// Whether no processes were recorded.
    pub fn is_empty(&self) -> bool {
        self.by_process.is_empty()
    }

    fn record(&mut self, machine: MachineId, start: SimTime, truth: ProcessTruth) {
        self.by_process.insert((machine, start), truth);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A new fault strikes a healthy machine.
    FaultArrives(FaultId),
    /// A scheduled symptom emission for process `epoch`.
    EmitSymptom { symptom: SymptomId, epoch: u64 },
    /// A repair attempt finishes for process `epoch`.
    ActionCompletes { cured: bool, epoch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    machine: MachineId,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-machine recovery bookkeeping while a process is open.
#[derive(Debug)]
struct OpenProcess {
    epoch: u64,
    fault: FaultId,
    overlay: Option<FaultId>,
    observed: Vec<SymptomId>,
    tried: Vec<RepairAction>,
}

/// The discrete-event cluster simulator.
///
/// Drive it with [`ClusterSim::run`], which consumes the simulator and
/// returns the generated log plus ground truth.
///
/// ```
/// use recovery_simlog::{CatalogConfig, ClusterConfig, ClusterSim, UserDefinedPolicy};
///
/// let catalog = CatalogConfig::default().with_fault_types(5).generate(3);
/// let config = ClusterConfig { machines: 10, ..ClusterConfig::default() };
/// let sim = ClusterSim::new(&catalog, UserDefinedPolicy::default(), config, 42);
/// let (mut log, truth) = sim.run();
/// let processes = log.split_processes();
/// assert_eq!(processes.len(), truth.len());
/// ```
#[derive(Debug)]
pub struct ClusterSim<'a, P> {
    catalog: &'a FaultCatalog,
    policy: P,
    config: ClusterConfig,
    rng: StdRng,
}

impl<'a, P: RecoveryPolicy> ClusterSim<'a, P> {
    /// Creates a simulator over `catalog`, controlled by `policy`, seeded
    /// deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ClusterConfig::validate`]).
    pub fn new(catalog: &'a FaultCatalog, policy: P, config: ClusterConfig, seed: u64) -> Self {
        config.validate();
        ClusterSim {
            catalog,
            policy,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs the simulation to completion and returns the log and ground
    /// truth. New faults stop arriving at the horizon; processes already
    /// open run until they succeed, so the log contains only complete
    /// processes (plus any symptom noise).
    pub fn run(mut self) -> (RecoveryLog, GroundTruth) {
        let mut log = RecoveryLog::with_symptoms(self.catalog.symptoms().clone());
        let mut truth = GroundTruth::default();
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut open: HashMap<MachineId, OpenProcess> = HashMap::new();
        let mut seq = 0u64;
        let mut epoch = 0u64;

        let interarrival =
            Exponential::from_mean(self.config.mean_fault_interarrival.as_secs_f64());

        let mut push = |queue: &mut BinaryHeap<Reverse<Event>>,
                        seq: &mut u64,
                        time: SimTime,
                        machine: MachineId,
                        kind: EventKind| {
            *seq += 1;
            queue.push(Reverse(Event {
                time,
                seq: *seq,
                machine,
                kind,
            }));
        };

        // Seed each machine's first fault arrival.
        for m in 0..self.config.machines {
            let machine = MachineId::new(m);
            let dt = SimDuration::from_secs(interarrival.sample(&mut self.rng) as u64);
            if dt <= self.config.horizon {
                let fault = self.catalog.sample_fault(&mut self.rng).id();
                push(
                    &mut queue,
                    &mut seq,
                    SimTime::EPOCH + dt,
                    machine,
                    EventKind::FaultArrives(fault),
                );
            }
        }

        while let Some(Reverse(event)) = queue.pop() {
            match event.kind {
                EventKind::FaultArrives(fault_id) => {
                    debug_assert!(
                        !open.contains_key(&event.machine),
                        "arrival while recovering"
                    );
                    epoch += 1;
                    let fault = self.catalog.fault(fault_id).expect("sampled from catalog");
                    let mut process = OpenProcess {
                        epoch,
                        fault: fault_id,
                        overlay: None,
                        observed: vec![fault.primary_symptom()],
                        tried: Vec::new(),
                    };
                    log.push(LogEntry {
                        time: event.time,
                        machine: event.machine,
                        event: LogEvent::Symptom(fault.primary_symptom()),
                    });
                    // Secondary symptoms of the primary fault.
                    self.schedule_secondaries(
                        &mut queue,
                        &mut seq,
                        event.machine,
                        event.time,
                        fault_id,
                        epoch,
                        &mut push,
                    );
                    // Noise: an overlapping second fault mixes in its symptoms.
                    if self.rng.gen_bool(self.config.noise_prob) {
                        let overlay = self.catalog.sample_fault(&mut self.rng).id();
                        if overlay != fault_id {
                            process.overlay = Some(overlay);
                            let of = self.catalog.fault(overlay).expect("in catalog");
                            let delay = SimDuration::from_secs(self.rng.gen_range(30..600));
                            push(
                                &mut queue,
                                &mut seq,
                                event.time + delay,
                                event.machine,
                                EventKind::EmitSymptom {
                                    symptom: of.primary_symptom(),
                                    epoch,
                                },
                            );
                            self.schedule_secondaries(
                                &mut queue,
                                &mut seq,
                                event.machine,
                                event.time + delay,
                                overlay,
                                epoch,
                                &mut push,
                            );
                        }
                    }
                    truth.record(
                        event.machine,
                        event.time,
                        ProcessTruth {
                            fault: fault_id,
                            overlay: process.overlay,
                        },
                    );
                    // Controller engages after the detection delay.
                    let engage = event.time
                        + SimDuration::from_secs(
                            Exponential::from_mean(fault.mean_detection_delay_secs())
                                .sample(&mut self.rng)
                                .max(1.0) as u64,
                        );
                    open.insert(event.machine, process);
                    let (action_time, cured, _action) = self.start_attempt(
                        &mut log,
                        &mut queue,
                        &mut seq,
                        event.machine,
                        engage,
                        &mut open,
                        &mut push,
                    );
                    let _ = (action_time, cured);
                }
                EventKind::EmitSymptom {
                    symptom,
                    epoch: ev_epoch,
                } => {
                    if let Some(p) = open.get_mut(&event.machine) {
                        if p.epoch == ev_epoch {
                            if !p.observed.contains(&symptom) {
                                p.observed.push(symptom);
                            }
                            log.push(LogEntry {
                                time: event.time,
                                machine: event.machine,
                                event: LogEvent::Symptom(symptom),
                            });
                        }
                    }
                }
                EventKind::ActionCompletes {
                    cured,
                    epoch: ev_epoch,
                } => {
                    let is_current = open
                        .get(&event.machine)
                        .map(|p| p.epoch == ev_epoch)
                        .unwrap_or(false);
                    if !is_current {
                        continue;
                    }
                    if cured {
                        open.remove(&event.machine);
                        log.push(LogEntry {
                            time: event.time,
                            machine: event.machine,
                            event: LogEvent::Success,
                        });
                        // Schedule the next fault if within the horizon.
                        let dt = SimDuration::from_secs(
                            interarrival.sample(&mut self.rng).max(1.0) as u64,
                        );
                        let next = event.time + dt;
                        if next.duration_since(SimTime::EPOCH) <= self.config.horizon {
                            let fault = self.catalog.sample_fault(&mut self.rng).id();
                            push(
                                &mut queue,
                                &mut seq,
                                next,
                                event.machine,
                                EventKind::FaultArrives(fault),
                            );
                        }
                    } else {
                        self.start_attempt(
                            &mut log,
                            &mut queue,
                            &mut seq,
                            event.machine,
                            event.time,
                            &mut open,
                            &mut push,
                        );
                    }
                }
            }
        }
        (log, truth)
    }

    /// Chooses the next action via the policy (or the forced RMA at the
    /// attempt cap), logs it, samples its outcome and duration, and
    /// schedules its completion. Returns `(start, cured, action)`.
    #[allow(clippy::too_many_arguments)]
    fn start_attempt(
        &mut self,
        log: &mut RecoveryLog,
        queue: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        machine: MachineId,
        now: SimTime,
        open: &mut HashMap<MachineId, OpenProcess>,
        push: &mut impl FnMut(&mut BinaryHeap<Reverse<Event>>, &mut u64, SimTime, MachineId, EventKind),
    ) -> (SimTime, bool, RepairAction) {
        let p = open.get_mut(&machine).expect("attempt on open process");
        let action = if p.tried.len() + 1 >= self.config.max_attempts {
            // N-1 automated attempts failed: request manual repair.
            RepairAction::Rma
        } else {
            self.policy.decide(&PolicyContext {
                initial_symptom: p.observed[0],
                observed_symptoms: &p.observed,
                tried_actions: &p.tried,
            })
        };
        p.tried.push(action);
        log.push(LogEntry {
            time: now,
            machine,
            event: LogEvent::Action(action),
        });

        let fault = self.catalog.fault(p.fault).expect("in catalog");
        let mut cured = fault.attempt_cures(action, &mut self.rng);
        // A noisy process needs the overlay fault cured too.
        if let Some(overlay) = p.overlay {
            let of = self.catalog.fault(overlay).expect("in catalog");
            cured = cured && of.attempt_cures(action, &mut self.rng);
        }
        let duration = fault.timing(action).sample(cured, &mut self.rng);
        // A failed attempt often re-emits the primary symptom mid-window.
        if !cured && self.rng.gen_bool(self.config.re_emit_prob) {
            let frac = self.rng.gen_range(0.2..0.8);
            let at = now + SimDuration::from_secs((duration.as_secs_f64() * frac).max(1.0) as u64);
            let symptom = fault.primary_symptom();
            let epoch = p.epoch;
            push(
                queue,
                seq,
                at,
                machine,
                EventKind::EmitSymptom { symptom, epoch },
            );
        }
        let epoch = p.epoch;
        push(
            queue,
            seq,
            now + duration,
            machine,
            EventKind::ActionCompletes { cured, epoch },
        );
        (now, cured, action)
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_secondaries(
        &mut self,
        queue: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
        machine: MachineId,
        base: SimTime,
        fault: FaultId,
        epoch: u64,
        push: &mut impl FnMut(&mut BinaryHeap<Reverse<Event>>, &mut u64, SimTime, MachineId, EventKind),
    ) {
        let spec = self.catalog.fault(fault).expect("in catalog");
        let secondaries: Vec<_> = spec.secondary_symptoms().to_vec();
        for s in secondaries {
            if self.rng.gen_bool(s.probability) {
                let delay = Exponential::from_mean(s.mean_delay_secs).sample(&mut self.rng);
                let at = base + SimDuration::from_secs(delay.max(1.0) as u64);
                push(
                    queue,
                    seq,
                    at,
                    machine,
                    EventKind::EmitSymptom {
                        symptom: s.symptom,
                        epoch,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::policy::{FixedActionPolicy, UserDefinedPolicy};

    fn small_catalog() -> FaultCatalog {
        CatalogConfig::default().with_fault_types(10).generate(7)
    }

    fn small_config() -> ClusterConfig {
        ClusterConfig {
            machines: 20,
            horizon: SimDuration::from_days(20),
            mean_fault_interarrival: SimDuration::from_days(2),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn run_produces_complete_processes() {
        let catalog = small_catalog();
        let sim = ClusterSim::new(&catalog, UserDefinedPolicy::default(), small_config(), 1);
        let (mut log, truth) = sim.run();
        let procs = log.split_processes();
        assert!(!procs.is_empty(), "simulation produced no processes");
        assert_eq!(procs.len(), truth.len(), "every process has ground truth");
        for p in &procs {
            assert!(truth.lookup(p.machine(), p.start()).is_some());
            assert!(p.downtime() > SimDuration::ZERO);
            assert!(!p.actions().is_empty(), "controller always acts");
            assert!(p.actions().len() <= 20, "N = 20 cap respected");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let catalog = small_catalog();
        let run = |seed| {
            let sim = ClusterSim::new(&catalog, UserDefinedPolicy::default(), small_config(), seed);
            let (mut log, _) = sim.run();
            log.to_text()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn initial_symptom_matches_ground_truth_fault() {
        let catalog = small_catalog();
        let sim = ClusterSim::new(&catalog, UserDefinedPolicy::default(), small_config(), 2);
        let (mut log, truth) = sim.run();
        for p in log.split_processes() {
            let t = truth.lookup(p.machine(), p.start()).unwrap();
            let fault = catalog.fault(t.fault).unwrap();
            assert_eq!(p.initial_symptom(), fault.primary_symptom());
        }
    }

    #[test]
    fn rma_only_policy_cures_in_one_attempt() {
        let catalog = small_catalog();
        let sim = ClusterSim::new(
            &catalog,
            FixedActionPolicy::new(RepairAction::Rma),
            small_config(),
            3,
        );
        let (mut log, _) = sim.run();
        let procs = log.split_processes();
        assert!(!procs.is_empty());
        for p in &procs {
            assert_eq!(p.actions().len(), 1, "RMA always cures");
            assert_eq!(p.final_action(), Some(RepairAction::Rma));
        }
    }

    #[test]
    fn trynop_only_policy_hits_the_attempt_cap() {
        // Build a catalog where TRYNOP never works, then insist on it:
        // the N = 20 cap must force a final RMA on attempt 20.
        let catalog = CatalogConfig::default()
            .with_fault_types(3)
            .with_deceptive_ranks(vec![0, 1, 2])
            .generate(11);
        let config = ClusterConfig {
            machines: 5,
            horizon: SimDuration::from_days(30),
            mean_fault_interarrival: SimDuration::from_days(3),
            noise_prob: 0.0,
            ..ClusterConfig::default()
        };
        let sim = ClusterSim::new(
            &catalog,
            FixedActionPolicy::new(RepairAction::TryNop),
            config,
            4,
        );
        let (mut log, _) = sim.run();
        let procs = log.split_processes();
        assert!(!procs.is_empty());
        let mut saw_cap = false;
        for p in &procs {
            let last = p.final_action().unwrap();
            if p.actions().len() == 20 {
                assert_eq!(last, RepairAction::Rma, "cap forces manual repair");
                saw_cap = true;
            }
            assert!(p.actions().len() <= 20);
        }
        assert!(
            saw_cap,
            "deceptive faults should exhaust the TRYNOP-only policy"
        );
    }

    #[test]
    fn noise_processes_are_recorded_in_truth() {
        let catalog = small_catalog();
        let config = ClusterConfig {
            noise_prob: 0.5,
            ..small_config()
        };
        let sim = ClusterSim::new(&catalog, UserDefinedPolicy::default(), config, 9);
        let (mut log, truth) = sim.run();
        let procs = log.split_processes();
        let noisy = procs
            .iter()
            .filter(|p| {
                truth
                    .lookup(p.machine(), p.start())
                    .unwrap()
                    .overlay
                    .is_some()
            })
            .count();
        assert!(
            noisy > 0,
            "with noise_prob = 0.5 some processes must be noisy"
        );
    }

    #[test]
    fn no_arrivals_beyond_horizon() {
        let catalog = small_catalog();
        let config = ClusterConfig {
            horizon: SimDuration::from_days(10),
            ..small_config()
        };
        let horizon = config.horizon;
        let sim = ClusterSim::new(&catalog, UserDefinedPolicy::default(), config, 12);
        let (mut log, _) = sim.run();
        for p in log.split_processes() {
            assert!(
                p.start().duration_since(SimTime::EPOCH) <= horizon,
                "process started after the horizon"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn rejects_empty_cluster() {
        let catalog = small_catalog();
        let config = ClusterConfig {
            machines: 0,
            ..ClusterConfig::default()
        };
        let _ = ClusterSim::new(&catalog, UserDefinedPolicy::default(), config, 0);
    }
}
