//! Machine identity.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseLogError;

/// Identifies one machine in the monitored cluster.
///
/// Rendered as `M` followed by a zero-padded index (e.g. `M0423`), the form
/// used in the textual recovery log.
///
/// ```
/// use recovery_simlog::MachineId;
///
/// let m = MachineId::new(423);
/// assert_eq!(m.to_string(), "M0423");
/// assert_eq!("M0423".parse::<MachineId>().unwrap(), m);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(u32);

impl MachineId {
    /// Creates a machine id from its cluster index.
    pub const fn new(index: u32) -> Self {
        MachineId(index)
    }

    /// The cluster index of this machine.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{:04}", self.0)
    }
}

impl FromStr for MachineId {
    type Err = ParseLogError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix('M')
            .ok_or_else(|| ParseLogError::machine(s))?;
        digits
            .parse::<u32>()
            .map(MachineId)
            .map_err(|_| ParseLogError::machine(s))
    }
}

impl From<u32> for MachineId {
    fn from(index: u32) -> Self {
        MachineId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_zero_padded() {
        assert_eq!(MachineId::new(7).to_string(), "M0007");
        assert_eq!(MachineId::new(12345).to_string(), "M12345");
    }

    #[test]
    fn parse_round_trips() {
        for idx in [0u32, 1, 42, 9999, 123_456] {
            let m = MachineId::new(idx);
            assert_eq!(m.to_string().parse::<MachineId>().unwrap(), m);
        }
    }

    #[test]
    fn rejects_malformed_ids() {
        for s in ["", "M", "0423", "Mforty", "N0423", "M-1"] {
            assert!(s.parse::<MachineId>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn orders_by_index() {
        assert!(MachineId::new(1) < MachineId::new(2));
    }
}
