//! Repair actions and their strength order.
//!
//! The production system behind the paper exposes exactly four repair
//! actions (§4.1): `TRYNOP` (watch and do nothing), `REBOOT`, `REIMAGE`
//! (rebuild the operating system), and `RMA` (hand the machine to a human).
//! They form a *total strength order*: a stronger action subsumes the
//! process of every weaker one, which is the basis of the paper's
//! replay hypotheses H1/H2 (§3.3).

use std::fmt;
use std::str::FromStr;

use crate::error::ParseLogError;
use crate::time::SimDuration;

/// A repair action that the recovery controller can apply to a machine.
///
/// Variants are declared from weakest to strongest, so the derived [`Ord`]
/// *is* the strength order used throughout the workspace:
///
/// ```
/// use recovery_simlog::RepairAction;
///
/// assert!(RepairAction::TryNop < RepairAction::Reboot);
/// assert!(RepairAction::Reimage < RepairAction::Rma);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RepairAction {
    /// Watch the machine without intervening, hoping the error is transient.
    TryNop,
    /// Restart the machine.
    Reboot,
    /// Rebuild the operating system image.
    Reimage,
    /// Return Merchandise Authorization: request a manual repair by a human.
    Rma,
}

impl RepairAction {
    /// All actions, weakest first.
    pub const ALL: [RepairAction; 4] = [
        RepairAction::TryNop,
        RepairAction::Reboot,
        RepairAction::Reimage,
        RepairAction::Rma,
    ];

    /// Number of distinct repair actions.
    pub const COUNT: usize = 4;

    /// Strength rank, `0` (weakest) through `3` (strongest).
    pub const fn strength(self) -> u8 {
        self as u8
    }

    /// Dense index, usable to address per-action arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The action with dense index `index`, if in range.
    pub fn from_index(index: usize) -> Option<RepairAction> {
        RepairAction::ALL.get(index).copied()
    }

    /// Whether `self` is at least as strong as `other`.
    ///
    /// By hypothesis H2 of the paper, an action at least as strong as a
    /// known-correct action also repairs the error.
    pub fn at_least_as_strong_as(self, other: RepairAction) -> bool {
        self.strength() >= other.strength()
    }

    /// The next stronger action, or `None` for [`RepairAction::Rma`].
    pub fn escalate(self) -> Option<RepairAction> {
        RepairAction::from_index(self.index() + 1)
    }

    /// A representative *baseline* duration for executing this action and
    /// observing its effect, used by catalog generation as the center of the
    /// per-fault duration distributions. Production numbers vary widely;
    /// these magnitudes mirror the paper's Table 1 episode (minutes for
    /// `TRYNOP`/`REBOOT`, hours for `REIMAGE`, days for `RMA`).
    pub fn baseline_duration(self) -> SimDuration {
        match self {
            RepairAction::TryNop => SimDuration::from_mins(15),
            RepairAction::Reboot => SimDuration::from_mins(30),
            RepairAction::Reimage => SimDuration::from_hours(3),
            RepairAction::Rma => SimDuration::from_hours(36),
        }
    }

    /// How much longer a *failed* attempt of this action takes compared to
    /// a successful one: the controller waits out the full observation
    /// window before concluding the cheap action did not work — the
    /// overhead the paper calls "actually not that negligible" (§1).
    pub fn failure_duration_factor(self) -> f64 {
        match self {
            // Failure of TRYNOP shows up as the error recurring, which is
            // observed within the same watch window as success.
            RepairAction::TryNop => 1.0,
            RepairAction::Reboot => 2.2,
            RepairAction::Reimage => 1.5,
            RepairAction::Rma => 1.0,
        }
    }

    /// The log token for this action (`TRYNOP`, `REBOOT`, `REIMAGE`, `RMA`).
    pub const fn as_str(self) -> &'static str {
        match self {
            RepairAction::TryNop => "TRYNOP",
            RepairAction::Reboot => "REBOOT",
            RepairAction::Reimage => "REIMAGE",
            RepairAction::Rma => "RMA",
        }
    }
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RepairAction {
    type Err = ParseLogError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "TRYNOP" => Ok(RepairAction::TryNop),
            "REBOOT" => Ok(RepairAction::Reboot),
            "REIMAGE" => Ok(RepairAction::Reimage),
            "RMA" => Ok(RepairAction::Rma),
            _ => Err(ParseLogError::action(s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_order_is_total_and_matches_ord() {
        for (i, a) in RepairAction::ALL.iter().enumerate() {
            assert_eq!(a.strength() as usize, i);
            assert_eq!(a.index(), i);
            for b in &RepairAction::ALL {
                assert_eq!(a < b, a.strength() < b.strength());
                assert_eq!(a.at_least_as_strong_as(*b), a.strength() >= b.strength());
            }
        }
    }

    #[test]
    fn escalation_walks_the_ladder() {
        assert_eq!(RepairAction::TryNop.escalate(), Some(RepairAction::Reboot));
        assert_eq!(RepairAction::Reboot.escalate(), Some(RepairAction::Reimage));
        assert_eq!(RepairAction::Reimage.escalate(), Some(RepairAction::Rma));
        assert_eq!(RepairAction::Rma.escalate(), None);
    }

    #[test]
    fn tokens_round_trip() {
        for a in RepairAction::ALL {
            assert_eq!(a.as_str().parse::<RepairAction>().unwrap(), a);
        }
    }

    #[test]
    fn rejects_unknown_tokens() {
        for s in ["", "reboot", "REBOOT ", "POWERCYCLE"] {
            assert!(s.parse::<RepairAction>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn from_index_in_and_out_of_range() {
        assert_eq!(RepairAction::from_index(0), Some(RepairAction::TryNop));
        assert_eq!(RepairAction::from_index(3), Some(RepairAction::Rma));
        assert_eq!(RepairAction::from_index(4), None);
    }

    #[test]
    fn baseline_durations_increase_with_strength() {
        let durs: Vec<_> = RepairAction::ALL
            .iter()
            .map(|a| a.baseline_duration())
            .collect();
        assert!(durs.windows(2).all(|w| w[0] < w[1]));
    }
}
