//! The recovery log: an ordered collection of entries plus the symptom
//! catalog, with the textual serialization format of the paper's Table 1
//! and the process-splitting step of §4.1.

use std::collections::BTreeMap;

use crate::action::RepairAction;
use crate::error::ParseLogError;
use crate::event::{LogEntry, LogEvent};
use crate::machine::MachineId;
use crate::process::{ActionRecord, RecoveryProcess};
use crate::symptom::SymptomCatalog;
use crate::time::SimTime;

/// A recovery log: chronologically ordered `<time, machine, description>`
/// entries together with the catalog of symptom descriptions.
///
/// ```
/// use recovery_simlog::{RecoveryLog, LogEntry, LogEvent, MachineId, SimTime, RepairAction};
///
/// let mut log = RecoveryLog::new();
/// let flaky = log.symptoms_mut().intern("error:IFM-ISNWatchdog");
/// log.push(LogEntry { time: SimTime::from_secs(0), machine: MachineId::new(1),
///                     event: LogEvent::Symptom(flaky) });
/// log.push(LogEntry { time: SimTime::from_secs(60), machine: MachineId::new(1),
///                     event: LogEvent::Action(RepairAction::Reboot) });
/// log.push(LogEntry { time: SimTime::from_secs(1800), machine: MachineId::new(1),
///                     event: LogEvent::Success });
/// assert_eq!(log.split_processes().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    entries: Vec<LogEntry>,
    symptoms: SymptomCatalog,
    sorted: bool,
}

impl RecoveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RecoveryLog {
            entries: Vec::new(),
            symptoms: SymptomCatalog::new(),
            sorted: true,
        }
    }

    /// Creates an empty log that shares the given symptom catalog (used by
    /// the generator, which interns names while building the catalog).
    pub fn with_symptoms(symptoms: SymptomCatalog) -> Self {
        RecoveryLog {
            entries: Vec::new(),
            symptoms,
            sorted: true,
        }
    }

    /// Assembles a log from already-parsed entries and their catalog (the
    /// merge step of sharded ingestion). Sortedness is detected with one
    /// scan, so a chronologically merged entry stream keeps the lazy-sort
    /// fast path.
    pub fn from_parts(entries: Vec<LogEntry>, symptoms: SymptomCatalog) -> Self {
        let sorted = entries
            .windows(2)
            .all(|w| (w[0].time, w[0].machine) <= (w[1].time, w[1].machine));
        RecoveryLog {
            entries,
            symptoms,
            sorted,
        }
    }

    /// Appends an entry. Entries may arrive out of order; the log sorts
    /// lazily when read.
    pub fn push(&mut self, entry: LogEntry) {
        if let Some(last) = self.entries.last() {
            if (entry.time, entry.machine) < (last.time, last.machine) {
                self.sorted = false;
            }
        }
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in chronological order (sorting first if needed).
    pub fn entries(&mut self) -> &[LogEntry] {
        self.ensure_sorted();
        &self.entries
    }

    /// The symptom catalog.
    pub fn symptoms(&self) -> &SymptomCatalog {
        &self.symptoms
    }

    /// Mutable access to the symptom catalog, for interning new
    /// descriptions before pushing entries that reference them.
    pub fn symptoms_mut(&mut self) -> &mut SymptomCatalog {
        &mut self.symptoms
    }

    /// The time of the first and last entries, or `None` when empty.
    pub fn time_span(&mut self) -> Option<(SimTime, SimTime)> {
        self.ensure_sorted();
        match (self.entries.first(), self.entries.last()) {
            (Some(a), Some(b)) => Some((a.time, b.time)),
            _ => None,
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.entries.sort_by_key(|e| (e.time, e.machine));
            self.sorted = true;
        }
    }

    /// Serializes the whole log in the textual format (one entry per
    /// line, tab-separated, as in the paper's Table 1).
    pub fn to_text(&mut self) -> String {
        self.ensure_sorted();
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.format_line(&self.symptoms));
            out.push('\n');
        }
        out
    }

    /// Parses a textual log produced by [`RecoveryLog::to_text`] (or by any
    /// external monitoring system using the same format).
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseLogError`], annotated with its 1-based line
    /// number. Blank lines and lines starting with `#` are skipped.
    pub fn from_text(text: &str) -> Result<Self, ParseLogError> {
        let mut log = RecoveryLog::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let entry =
                LogEntry::parse_line(line, &mut log.symptoms).map_err(|e| e.at_line(i + 1))?;
            log.push(entry);
        }
        Ok(log)
    }

    /// Builds the symptom catalog of a textual log in one sequential pass,
    /// without validating the time/machine fields. Descriptions are
    /// interned in first-appearance line order — exactly the ids
    /// [`RecoveryLog::from_text`] assigns — so shard workers parsing
    /// disjoint line ranges against this catalog (with
    /// [`LogEntry::parse_line_interned`]) reproduce the single-threaded
    /// `SymptomId`s for any shard count.
    pub fn prescan_symptoms(text: &str) -> SymptomCatalog {
        let mut symptoms = SymptomCatalog::new();
        for line in text.lines() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some(description) = line.splitn(3, '\t').nth(2) else {
                continue;
            };
            // The same classification order as `LogEntry::parse_line`:
            // only descriptions that would parse as symptoms are interned.
            if description != "Success"
                && description.parse::<RepairAction>().is_err()
                && description.contains(':')
            {
                symptoms.intern(description);
            }
        }
        symptoms
    }

    /// Audits the log: how many complete processes it contains, and what
    /// gets dropped on the floor by [`RecoveryLog::split_processes`] —
    /// stray actions or `Success` reports outside any process (e.g.
    /// operator-initiated maintenance), and machines with an unfinished
    /// process at the end of the log. Useful before trusting an external
    /// log as training data.
    pub fn audit(&mut self) -> LogAudit {
        self.ensure_sorted();
        let mut open: BTreeMap<MachineId, bool> = BTreeMap::new();
        let mut audit = LogAudit::default();
        for e in &self.entries {
            match e.event {
                LogEvent::Symptom(_) => {
                    open.entry(e.machine).or_insert(true);
                }
                LogEvent::Action(_) => {
                    if !open.contains_key(&e.machine) {
                        audit.stray_actions += 1;
                    }
                }
                LogEvent::Success => {
                    if open.remove(&e.machine).is_some() {
                        audit.complete_processes += 1;
                    } else {
                        audit.stray_successes += 1;
                    }
                }
            }
        }
        audit.unfinished_processes = open.len();
        audit
    }

    /// Splits the log into complete recovery processes, globally ordered by
    /// process start time (the order used for the paper's time-ordered
    /// train/test splits).
    ///
    /// Per machine, a process opens at the first symptom seen while the
    /// machine is healthy and closes at the next `Success`. Stray actions
    /// or `Success` entries outside a process, and trailing unfinished
    /// processes, are dropped — mirroring the paper, which only trains on
    /// processes that "end with successful recovery".
    pub fn split_processes(&mut self) -> Vec<RecoveryProcess> {
        self.ensure_sorted();
        let mut processes = extract_processes(&self.entries, |_| true);
        processes.sort_by_key(|p| (p.start(), p.machine()));
        processes
    }
}

/// Runs the per-machine process state machine over chronologically sorted
/// entries, visiting only machines for which `take` returns `true`.
///
/// Machines never interact during process extraction, so disjoint machine
/// subsets can be extracted independently (the shard step of parallel
/// ingestion) and merged back by sorting on `(start, machine)` — the
/// single-threaded [`RecoveryLog::split_processes`] order. Processes are
/// returned in completion (`Success`) order, which within one machine is
/// also chronological — the property the stable merge sort relies on.
pub fn extract_processes(
    entries: &[LogEntry],
    take: impl Fn(MachineId) -> bool,
) -> Vec<RecoveryProcess> {
    #[derive(Default)]
    struct Open {
        symptoms: Vec<(SimTime, crate::symptom::SymptomId)>,
        actions: Vec<ActionRecord>,
    }
    let mut open: BTreeMap<MachineId, Open> = BTreeMap::new();
    let mut processes = Vec::new();
    for e in entries {
        if !take(e.machine) {
            continue;
        }
        match e.event {
            LogEvent::Symptom(s) => {
                open.entry(e.machine)
                    .or_default()
                    .symptoms
                    .push((e.time, s));
            }
            LogEvent::Action(a) => {
                // An action without a preceding symptom is a stray
                // (e.g. operator-initiated maintenance): ignore it.
                if let Some(o) = open.get_mut(&e.machine) {
                    o.actions.push(ActionRecord {
                        time: e.time,
                        action: a,
                    });
                }
            }
            LogEvent::Success => {
                if let Some(o) = open.remove(&e.machine) {
                    if !o.symptoms.is_empty() {
                        processes.push(RecoveryProcess::new(
                            e.machine, o.symptoms, o.actions, e.time,
                        ));
                    }
                }
            }
        }
    }
    processes
}

/// The result of [`RecoveryLog::audit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogAudit {
    /// Processes that run symptom → … → `Success`.
    pub complete_processes: usize,
    /// Repair actions recorded while no process was open on the machine.
    pub stray_actions: usize,
    /// `Success` reports with no open process to close.
    pub stray_successes: usize,
    /// Machines whose last process never reached `Success`.
    pub unfinished_processes: usize,
}

impl LogAudit {
    /// Whether the log is perfectly clean: everything belongs to a
    /// complete process.
    pub fn is_clean(&self) -> bool {
        self.stray_actions == 0 && self.stray_successes == 0 && self.unfinished_processes == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::RepairAction;

    fn push(log: &mut RecoveryLog, secs: u64, machine: u32, event: LogEvent) {
        log.push(LogEntry {
            time: SimTime::from_secs(secs),
            machine: MachineId::new(machine),
            event,
        });
    }

    fn two_machine_log() -> RecoveryLog {
        let mut log = RecoveryLog::new();
        let s0 = log.symptoms_mut().intern("error:A");
        let s1 = log.symptoms_mut().intern("errorHardware:B");
        // Machine 1: full process.
        push(&mut log, 0, 1, LogEvent::Symptom(s0));
        push(&mut log, 100, 1, LogEvent::Action(RepairAction::TryNop));
        push(&mut log, 800, 1, LogEvent::Symptom(s1));
        push(&mut log, 900, 1, LogEvent::Action(RepairAction::Reboot));
        push(&mut log, 2700, 1, LogEvent::Success);
        // Machine 2: interleaved process.
        push(&mut log, 50, 2, LogEvent::Symptom(s1));
        push(&mut log, 300, 2, LogEvent::Action(RepairAction::Reboot));
        push(&mut log, 2000, 2, LogEvent::Success);
        log
    }

    #[test]
    fn splits_interleaved_machines() {
        let mut log = two_machine_log();
        let procs = log.split_processes();
        assert_eq!(procs.len(), 2);
        // Ordered by start time: machine 1 (t=0) before machine 2 (t=50).
        assert_eq!(procs[0].machine(), MachineId::new(1));
        assert_eq!(procs[1].machine(), MachineId::new(2));
        assert_eq!(procs[0].actions().len(), 2);
        assert_eq!(procs[1].actions().len(), 1);
    }

    #[test]
    fn consecutive_processes_on_one_machine() {
        let mut log = RecoveryLog::new();
        let s = log.symptoms_mut().intern("error:A");
        push(&mut log, 0, 1, LogEvent::Symptom(s));
        push(&mut log, 10, 1, LogEvent::Action(RepairAction::Reboot));
        push(&mut log, 100, 1, LogEvent::Success);
        push(&mut log, 5000, 1, LogEvent::Symptom(s));
        push(&mut log, 5010, 1, LogEvent::Action(RepairAction::Reimage));
        push(&mut log, 9000, 1, LogEvent::Success);
        let procs = log.split_processes();
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].final_action(), Some(RepairAction::Reboot));
        assert_eq!(procs[1].final_action(), Some(RepairAction::Reimage));
    }

    #[test]
    fn strays_and_unfinished_are_dropped() {
        let mut log = RecoveryLog::new();
        let s = log.symptoms_mut().intern("error:A");
        // Stray action and Success with no open process.
        push(&mut log, 0, 1, LogEvent::Action(RepairAction::Reboot));
        push(&mut log, 5, 1, LogEvent::Success);
        // Unfinished process at log end.
        push(&mut log, 100, 1, LogEvent::Symptom(s));
        push(&mut log, 110, 1, LogEvent::Action(RepairAction::TryNop));
        assert!(log.split_processes().is_empty());
    }

    #[test]
    fn out_of_order_pushes_are_sorted_lazily() {
        let mut log = RecoveryLog::new();
        let s = log.symptoms_mut().intern("error:A");
        push(&mut log, 100, 1, LogEvent::Success);
        push(&mut log, 0, 1, LogEvent::Symptom(s));
        push(&mut log, 10, 1, LogEvent::Action(RepairAction::Reboot));
        let procs = log.split_processes();
        assert_eq!(procs.len(), 1);
        assert_eq!(procs[0].downtime().as_secs(), 100);
    }

    #[test]
    fn text_round_trip_preserves_processes() {
        let mut log = two_machine_log();
        let text = log.to_text();
        let mut parsed = RecoveryLog::from_text(&text).unwrap();
        assert_eq!(parsed.len(), log.len());
        let a = log.split_processes();
        let b = parsed.split_processes();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.machine(), y.machine());
            assert_eq!(x.downtime(), y.downtime());
            assert_eq!(x.actions(), y.actions());
            // Symptom *names* must match even though ids may be renumbered.
            let xn: Vec<_> = x
                .symptom_set()
                .iter()
                .map(|&s| log.symptoms().name(s))
                .collect();
            let yn: Vec<_> = y
                .symptom_set()
                .iter()
                .map(|&s| parsed.symptoms().name(s))
                .collect();
            assert_eq!(xn, yn);
        }
    }

    #[test]
    fn from_text_skips_blank_and_comment_lines() {
        let text = "# recovery log\n\n2006-01-01 00:00:00\tM0001\terror:A\n2006-01-01 00:10:00\tM0001\tSuccess\n";
        let mut log = RecoveryLog::from_text(text).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.split_processes().len(), 1);
    }

    #[test]
    fn from_text_reports_line_numbers() {
        let text = "2006-01-01 00:00:00\tM0001\terror:A\ngarbage line\n";
        let err = RecoveryLog::from_text(text).unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn prescan_matches_from_text_catalog() {
        let mut log = two_machine_log();
        let text = log.to_text();
        let parsed = RecoveryLog::from_text(&text).unwrap();
        assert_eq!(RecoveryLog::prescan_symptoms(&text), *parsed.symptoms());
        // Comment/blank lines and action/Success descriptions never intern.
        assert!(RecoveryLog::prescan_symptoms("# error:A\n\nx\ty\tSuccess\n").is_empty());
    }

    #[test]
    fn from_parts_round_trips_and_detects_order() {
        let mut log = two_machine_log();
        let sorted_entries = log.entries().to_vec();
        let mut rebuilt = RecoveryLog::from_parts(sorted_entries.clone(), log.symptoms().clone());
        assert_eq!(rebuilt.split_processes(), log.split_processes());
        // Reversed entries must still split identically via the lazy sort.
        let reversed: Vec<_> = sorted_entries.into_iter().rev().collect();
        let mut shuffled = RecoveryLog::from_parts(reversed, log.symptoms().clone());
        assert_eq!(shuffled.split_processes(), log.split_processes());
    }

    #[test]
    fn extract_processes_partitions_by_machine() {
        let mut log = two_machine_log();
        let all = log.split_processes();
        let entries = log.entries().to_vec();
        let mut sharded: Vec<_> = (0..2u32)
            .flat_map(|s| extract_processes(&entries, |m| m.index() % 2 == s))
            .collect();
        sharded.sort_by_key(|p| (p.start(), p.machine()));
        assert_eq!(sharded, all);
    }

    #[test]
    fn audit_counts_completes_strays_and_unfinished() {
        let mut log = RecoveryLog::new();
        let s = log.symptoms_mut().intern("error:A");
        // Stray action + stray success.
        push(&mut log, 0, 1, LogEvent::Action(RepairAction::Reboot));
        push(&mut log, 5, 1, LogEvent::Success);
        // One complete process.
        push(&mut log, 100, 1, LogEvent::Symptom(s));
        push(&mut log, 110, 1, LogEvent::Action(RepairAction::TryNop));
        push(&mut log, 200, 1, LogEvent::Success);
        // One unfinished process on another machine.
        push(&mut log, 300, 2, LogEvent::Symptom(s));
        let audit = log.audit();
        assert_eq!(audit.complete_processes, 1);
        assert_eq!(audit.stray_actions, 1);
        assert_eq!(audit.stray_successes, 1);
        assert_eq!(audit.unfinished_processes, 1);
        assert!(!audit.is_clean());
        assert_eq!(audit.complete_processes, log.split_processes().len());
    }

    #[test]
    fn audit_of_generated_log_matches_split() {
        use crate::generator::{GeneratorConfig, LogGenerator};
        let mut generated = LogGenerator::new(GeneratorConfig::small()).generate();
        let audit = generated.log.audit();
        assert_eq!(
            audit.complete_processes,
            generated.log.split_processes().len()
        );
        assert_eq!(audit.stray_actions, 0);
        assert_eq!(audit.stray_successes, 0);
        // The simulator finishes every process it opens.
        assert_eq!(audit.unfinished_processes, 0);
        assert!(audit.is_clean());
    }

    #[test]
    fn time_span_covers_first_and_last() {
        let mut log = two_machine_log();
        let (a, b) = log.time_span().unwrap();
        assert_eq!(a, SimTime::from_secs(0));
        assert_eq!(b, SimTime::from_secs(2700));
        assert!(RecoveryLog::new().time_span().is_none());
    }
}
