//! Simulation time: absolute instants and durations, with the calendar
//! rendering used by the textual recovery-log format.
//!
//! The simulator runs on a virtual clock of whole seconds. [`SimTime`] is an
//! absolute instant measured from the *log epoch* (2006-01-01 00:00:00, a
//! date contemporary with the paper's data collection window);
//! [`SimDuration`] is a span between two instants. Both are newtypes over
//! `u64` seconds so that instants and spans cannot be mixed up
//! (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

use crate::error::ParseLogError;

/// Calendar year of the log epoch used when rendering [`SimTime`].
pub const EPOCH_YEAR: i64 = 2006;

/// Days from 0000-03-01 to the log epoch (2006-01-01), used internally by
/// the civil-date conversion.
const EPOCH_DAYS: i64 = days_from_civil(EPOCH_YEAR, 1, 1);

/// An absolute instant on the simulation clock, in whole seconds since the
/// log epoch (2006-01-01 00:00:00).
///
/// ```
/// use recovery_simlog::SimTime;
///
/// let t = SimTime::from_secs(3 * 3600 + 7 * 60 + 12);
/// assert_eq!(t.to_string(), "2006-01-01 03:07:12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span between two [`SimTime`] instants, in whole seconds.
///
/// ```
/// use recovery_simlog::SimDuration;
///
/// let d = SimDuration::from_secs(90);
/// assert_eq!(d.as_secs(), 90);
/// assert_eq!((d + SimDuration::from_secs(30)).as_secs(), 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The log epoch itself: 2006-01-01 00:00:00.
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Seconds elapsed since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulator only ever
    /// measures forward spans.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since called with a later instant ({earlier} > {self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Decomposes this instant into calendar fields
    /// `(year, month, day, hour, minute, second)`.
    pub fn to_calendar(self) -> (i64, u32, u32, u32, u32, u32) {
        let days = (self.0 / 86_400) as i64 + EPOCH_DAYS;
        let rem = self.0 % 86_400;
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (rem / 3600) as u32,
            (rem % 3600 / 60) as u32,
            (rem % 60) as u32,
        )
    }

    /// Builds an instant from calendar fields.
    ///
    /// Returns `None` if the fields do not name a valid date-time at or
    /// after the epoch.
    pub fn from_calendar(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Option<Self> {
        if !(1..=12).contains(&month)
            || day < 1
            || day > days_in_month(year, month)
            || hour > 23
            || minute > 59
            || second > 59
        {
            return None;
        }
        let days = days_from_civil(year, month, day) - EPOCH_DAYS;
        if days < 0 {
            return None;
        }
        Some(SimTime(
            days as u64 * 86_400
                + u64::from(hour) * 3600
                + u64::from(minute) * 60
                + u64::from(second),
        ))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Creates a span of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// This span in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// This span in seconds as a float, convenient for cost arithmetic.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    /// Renders as `YYYY-MM-DD hh:mm:ss`, the timestamp format of the
    /// textual recovery log.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_calendar();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    /// Renders as a humanized span, e.g. `2d 03:15:09`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.0 / 86_400;
        let rem = self.0 % 86_400;
        let (h, m, s) = (rem / 3600, rem % 3600 / 60, rem % 60);
        if days > 0 {
            write!(f, "{days}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl FromStr for SimTime {
    type Err = ParseLogError;

    /// Parses the `YYYY-MM-DD hh:mm:ss` rendering of [`SimTime`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseLogError::timestamp(s);
        let (date, clock) = s.split_once(' ').ok_or_else(bad)?;
        let mut dit = date.splitn(3, '-');
        let mut cit = clock.splitn(3, ':');
        let next_num = |it: &mut dyn Iterator<Item = &str>| -> Result<i64, ParseLogError> {
            it.next().ok_or_else(bad)?.parse::<i64>().map_err(|_| bad())
        };
        let year = next_num(&mut dit)?;
        let month = next_num(&mut dit)? as u32;
        let day = next_num(&mut dit)? as u32;
        let hour = next_num(&mut cit)? as u32;
        let minute = next_num(&mut cit)? as u32;
        let second = next_num(&mut cit)? as u32;
        SimTime::from_calendar(year, month, day, hour, minute, second).ok_or_else(bad)
    }
}

/// Days since 0000-03-01 for a civil date (Howard Hinnant's algorithm).
const fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 0000-03-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if year % 4 == 0 && (year % 100 != 0 || year % 400 == 0) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_renders_as_new_year_2006() {
        assert_eq!(SimTime::EPOCH.to_string(), "2006-01-01 00:00:00");
    }

    #[test]
    fn paper_table1_timestamp_round_trips() {
        // Table 1's first entry occurs at 3:07:12 am.
        let t = SimTime::from_secs(3 * 3600 + 7 * 60 + 12);
        let s = t.to_string();
        assert_eq!(s, "2006-01-01 03:07:12");
        assert_eq!(s.parse::<SimTime>().unwrap(), t);
    }

    #[test]
    fn crosses_month_and_year_boundaries() {
        let jan31 = SimTime::from_calendar(2006, 1, 31, 23, 59, 59).unwrap();
        assert_eq!(
            (jan31 + SimDuration::from_secs(1)).to_string(),
            "2006-02-01 00:00:00"
        );
        let dec31 = SimTime::from_calendar(2006, 12, 31, 23, 59, 59).unwrap();
        assert_eq!(
            (dec31 + SimDuration::from_secs(1)).to_string(),
            "2007-01-01 00:00:00"
        );
    }

    #[test]
    fn handles_leap_year_2008() {
        let t = SimTime::from_calendar(2008, 2, 29, 12, 0, 0).expect("2008 is a leap year");
        assert_eq!(t.to_string(), "2008-02-29 12:00:00");
        assert!(SimTime::from_calendar(2007, 2, 29, 0, 0, 0).is_none());
    }

    #[test]
    fn rejects_invalid_calendar_fields() {
        assert!(SimTime::from_calendar(2006, 0, 1, 0, 0, 0).is_none());
        assert!(SimTime::from_calendar(2006, 13, 1, 0, 0, 0).is_none());
        assert!(SimTime::from_calendar(2006, 4, 31, 0, 0, 0).is_none());
        assert!(SimTime::from_calendar(2006, 1, 1, 24, 0, 0).is_none());
        assert!(SimTime::from_calendar(2006, 1, 1, 0, 60, 0).is_none());
        assert!(
            SimTime::from_calendar(2005, 12, 31, 23, 59, 59).is_none(),
            "before epoch"
        );
    }

    #[test]
    fn rejects_malformed_strings() {
        for s in [
            "",
            "2006-01-01",
            "03:07:12",
            "2006/01/01 03:07:12",
            "2006-01-01 3:7",
        ] {
            assert!(s.parse::<SimTime>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn duration_since_measures_forward_spans() {
        let a = SimTime::from_secs(100);
        let b = SimTime::from_secs(160);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(60));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backward_span() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_display_humanizes() {
        assert_eq!(SimDuration::from_secs(59).to_string(), "00:00:59");
        assert_eq!(SimDuration::from_hours(3).to_string(), "03:00:00");
        assert_eq!(
            (SimDuration::from_days(2) + SimDuration::from_secs(3 * 3600 + 15 * 60 + 9))
                .to_string(),
            "2d 03:15:09"
        );
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = [10u64, 20, 30]
            .into_iter()
            .map(SimDuration::from_secs)
            .sum();
        assert_eq!(total, SimDuration::from_secs(60));
    }
}
