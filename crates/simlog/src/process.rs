//! Recovery processes: the episode unit of the whole pipeline.
//!
//! A *recovery process* (paper §4.1) starts with the advent of a new error
//! on a machine, experiences a series of repair actions, and ends with a
//! successful recovery. The paper's Table 1 shows one example. Processes
//! are extracted from a [`crate::RecoveryLog`] by
//! [`crate::RecoveryLog::split_processes`].

use crate::action::RepairAction;
use crate::machine::MachineId;
use crate::symptom::SymptomId;
use crate::time::{SimDuration, SimTime};

/// One repair action applied during a recovery process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActionRecord {
    /// When the controller started the action.
    pub time: SimTime,
    /// The action applied.
    pub action: RepairAction,
}

/// An attempted action together with its observed cost and outcome, as
/// reconstructed from log timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActionCost {
    /// The action applied.
    pub action: RepairAction,
    /// Wall-clock cost of the attempt: the span from this action's start
    /// to the next action's start (or to `Success` for the final action).
    /// This includes the observation window, which the paper notes is "not
    /// that negligible" even for cheap actions.
    pub cost: SimDuration,
    /// Whether this attempt ended the process (only ever true for the last
    /// action).
    pub cured: bool,
}

/// One complete recovery process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryProcess {
    machine: MachineId,
    symptoms: Vec<(SimTime, SymptomId)>,
    actions: Vec<ActionRecord>,
    success_time: SimTime,
}

impl RecoveryProcess {
    /// Assembles a process from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `symptoms` is empty (a process starts with a symptom by
    /// definition), if the events are not in chronological order, or if
    /// `success_time` precedes the last event.
    pub fn new(
        machine: MachineId,
        symptoms: Vec<(SimTime, SymptomId)>,
        actions: Vec<ActionRecord>,
        success_time: SimTime,
    ) -> Self {
        assert!(
            !symptoms.is_empty(),
            "a recovery process starts with a symptom"
        );
        assert!(
            symptoms.windows(2).all(|w| w[0].0 <= w[1].0),
            "symptoms must be chronological"
        );
        assert!(
            actions.windows(2).all(|w| w[0].time <= w[1].time),
            "actions must be chronological"
        );
        let last_event = actions
            .last()
            .map(|a| a.time)
            .into_iter()
            .chain(symptoms.last().map(|s| s.0))
            .max()
            .expect("symptoms is non-empty");
        assert!(
            success_time >= last_event,
            "success must follow the last event"
        );
        RecoveryProcess {
            machine,
            symptoms,
            actions,
            success_time,
        }
    }

    /// The machine this process ran on.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// When the process started: the time of its first symptom.
    pub fn start(&self) -> SimTime {
        self.symptoms[0].0
    }

    /// When the successful recovery was reported.
    pub fn success_time(&self) -> SimTime {
        self.success_time
    }

    /// Total downtime of the process (start → success), the quantity the
    /// paper's MTTR objective minimizes.
    pub fn downtime(&self) -> SimDuration {
        self.success_time.duration_since(self.start())
    }

    /// The *initial symptom*, which the paper uses as the error type of the
    /// process (§3.1: "we define error type as the initial symptom of a
    /// recovery process").
    pub fn initial_symptom(&self) -> SymptomId {
        self.symptoms[0].1
    }

    /// All symptoms observed, in time order (may repeat).
    pub fn symptoms(&self) -> &[(SimTime, SymptomId)] {
        &self.symptoms
    }

    /// The distinct symptoms observed, in first-occurrence order.
    pub fn symptom_set(&self) -> Vec<SymptomId> {
        let mut seen = Vec::new();
        for &(_, s) in &self.symptoms {
            if !seen.contains(&s) {
                seen.push(s);
            }
        }
        seen
    }

    /// The repair actions applied, in order.
    pub fn actions(&self) -> &[ActionRecord] {
        &self.actions
    }

    /// The final (curing) action, or `None` if the machine recovered
    /// spontaneously without intervention.
    pub fn final_action(&self) -> Option<RepairAction> {
        self.actions.last().map(|a| a.action)
    }

    /// The minimal action strength that repairs this error, per the
    /// paper's hypotheses H1/H2 (§3.3): the last action of a successful
    /// process is a correct action, and any action at least as strong also
    /// repairs it. A process with no recorded action recovered by waiting,
    /// so even `TRYNOP` suffices.
    pub fn required_action(&self) -> RepairAction {
        self.final_action().unwrap_or(RepairAction::TryNop)
    }

    /// The *correct action set* of hypothesis H1: the last action plus any
    /// stronger action that appears in the process.
    pub fn correct_actions(&self) -> Vec<RepairAction> {
        let required = self.required_action();
        let mut out = Vec::new();
        for rec in &self.actions {
            if rec.action.at_least_as_strong_as(required) && !out.contains(&rec.action) {
                out.push(rec.action);
            }
        }
        if out.is_empty() {
            out.push(required);
        }
        out
    }

    /// Reconstructs the per-attempt cost of every action from the log
    /// timestamps: each attempt is charged the span to the next attempt,
    /// and the final attempt is charged the span to `Success`.
    pub fn action_costs(&self) -> Vec<ActionCost> {
        let n = self.actions.len();
        (0..n)
            .map(|i| {
                let end = if i + 1 < n {
                    self.actions[i + 1].time
                } else {
                    self.success_time
                };
                ActionCost {
                    action: self.actions[i].action,
                    cost: end.duration_since(self.actions[i].time),
                    cured: i + 1 == n,
                }
            })
            .collect()
    }

    /// The cost of the `occurrence`-th attempt (0-based) of `action` with
    /// the given outcome, scanning the process without allocating — the
    /// hot-path form of [`RecoveryProcess::action_costs`] used by replay,
    /// which calls it once per simulated attempt.
    pub fn nth_action_cost(
        &self,
        action: RepairAction,
        cured: bool,
        occurrence: usize,
    ) -> Option<SimDuration> {
        let n = self.actions.len();
        let mut seen = 0;
        for i in 0..n {
            let last = i + 1 == n;
            if self.actions[i].action == action && last == cured {
                if seen == occurrence {
                    let end = if last {
                        self.success_time
                    } else {
                        self.actions[i + 1].time
                    };
                    return Some(end.duration_since(self.actions[i].time));
                }
                seen += 1;
            }
        }
        None
    }

    /// The span from the first symptom to the first repair action: fault
    /// detection and decision overhead, identical under any policy.
    pub fn detection_lead(&self) -> SimDuration {
        match self.actions.first() {
            Some(a) => a.time.duration_since(self.start()),
            None => self.downtime(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// Builds the paper's Table 1 process:
    /// symptom, symptom, TRYNOP, symptom, symptom, REBOOT, Success.
    fn table1() -> RecoveryProcess {
        let s = |h: u64, m: u64, sec: u64| t(h * 3600 + m * 60 + sec);
        RecoveryProcess::new(
            MachineId::new(423),
            vec![
                (s(3, 7, 12), SymptomId::new(0)),
                (s(3, 10, 58), SymptomId::new(1)),
                (s(3, 25, 37), SymptomId::new(1)),
                (s(3, 27, 34), SymptomId::new(1)),
            ],
            vec![
                ActionRecord {
                    time: s(3, 23, 26),
                    action: RepairAction::TryNop,
                },
                ActionRecord {
                    time: s(3, 42, 10),
                    action: RepairAction::Reboot,
                },
            ],
            s(4, 13, 7),
        )
    }

    #[test]
    fn table1_basic_geometry() {
        let p = table1();
        assert_eq!(p.initial_symptom(), SymptomId::new(0));
        assert_eq!(p.final_action(), Some(RepairAction::Reboot));
        assert_eq!(p.required_action(), RepairAction::Reboot);
        // 3:07:12 → 4:13:07 is 1h 5m 55s.
        assert_eq!(p.downtime(), SimDuration::from_secs(3955));
        assert_eq!(p.detection_lead(), SimDuration::from_secs(974));
    }

    #[test]
    fn table1_action_costs() {
        let p = table1();
        let costs = p.action_costs();
        assert_eq!(costs.len(), 2);
        // TRYNOP runs 3:23:26 → 3:42:10 = 1124 s, fails.
        assert_eq!(costs[0].action, RepairAction::TryNop);
        assert_eq!(costs[0].cost, SimDuration::from_secs(1124));
        assert!(!costs[0].cured);
        // REBOOT runs 3:42:10 → 4:13:07 = 1857 s, cures.
        assert_eq!(costs[1].action, RepairAction::Reboot);
        assert_eq!(costs[1].cost, SimDuration::from_secs(1857));
        assert!(costs[1].cured);
    }

    #[test]
    fn symptom_set_dedupes_preserving_order() {
        let p = table1();
        assert_eq!(p.symptom_set(), vec![SymptomId::new(0), SymptomId::new(1)]);
    }

    #[test]
    fn correct_actions_include_stronger_in_process() {
        // A non-monotone sequence: REIMAGE tried, then REBOOT cures.
        let p = RecoveryProcess::new(
            MachineId::new(1),
            vec![(t(0), SymptomId::new(0))],
            vec![
                ActionRecord {
                    time: t(10),
                    action: RepairAction::Reimage,
                },
                ActionRecord {
                    time: t(500),
                    action: RepairAction::Reboot,
                },
            ],
            t(900),
        );
        assert_eq!(p.required_action(), RepairAction::Reboot);
        assert_eq!(
            p.correct_actions(),
            vec![RepairAction::Reimage, RepairAction::Reboot]
        );
    }

    #[test]
    fn nth_action_cost_matches_the_allocating_form() {
        let p = table1();
        for (i, ac) in p.action_costs().iter().enumerate() {
            let occurrence = p.action_costs()[..i]
                .iter()
                .filter(|x| x.action == ac.action && x.cured == ac.cured)
                .count();
            assert_eq!(
                p.nth_action_cost(ac.action, ac.cured, occurrence),
                Some(ac.cost),
                "attempt {i}"
            );
        }
        // Queries with no matching attempt return None.
        assert_eq!(p.nth_action_cost(RepairAction::Rma, true, 0), None);
        assert_eq!(p.nth_action_cost(RepairAction::TryNop, false, 1), None);
        assert_eq!(p.nth_action_cost(RepairAction::TryNop, true, 0), None);
    }

    #[test]
    fn spontaneous_recovery_requires_only_trynop() {
        let p = RecoveryProcess::new(
            MachineId::new(2),
            vec![(t(0), SymptomId::new(3))],
            vec![],
            t(120),
        );
        assert_eq!(p.final_action(), None);
        assert_eq!(p.required_action(), RepairAction::TryNop);
        assert_eq!(p.correct_actions(), vec![RepairAction::TryNop]);
        assert!(p.action_costs().is_empty());
        assert_eq!(p.detection_lead(), SimDuration::from_secs(120));
    }

    #[test]
    #[should_panic(expected = "starts with a symptom")]
    fn rejects_empty_symptoms() {
        let _ = RecoveryProcess::new(MachineId::new(0), vec![], vec![], t(1));
    }

    #[test]
    #[should_panic(expected = "success must follow")]
    fn rejects_success_before_last_event() {
        let _ = RecoveryProcess::new(
            MachineId::new(0),
            vec![(t(100), SymptomId::new(0))],
            vec![ActionRecord {
                time: t(200),
                action: RepairAction::TryNop,
            }],
            t(150),
        );
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn rejects_unordered_symptoms() {
        let _ = RecoveryProcess::new(
            MachineId::new(0),
            vec![(t(100), SymptomId::new(0)), (t(50), SymptomId::new(1))],
            vec![],
            t(200),
        );
    }
}
