//! Seeded random distributions used by the simulator.
//!
//! Implemented in-crate (exponential, log-normal, Zipf) so the workspace
//! only depends on `rand` itself. All samplers are plain structs with a
//! `sample(&mut impl Rng)` method; they are cheap to copy and deterministic
//! for a seeded generator.

use rand::Rng;

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
///
/// Used for fault inter-arrival times (a Poisson arrival process per
/// machine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential rate must be positive and finite, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Creates the distribution from its mean (`1 / lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn from_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        Exponential { lambda: 1.0 / mean }
    }

    /// The mean of the distribution.
    pub fn mean(self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        // gen::<f64>() is in [0, 1); flip to (0, 1] so ln() is finite.
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }
}

/// Log-normal distribution parameterized by the mean and coefficient of
/// variation of the *resulting* (not underlying normal) distribution.
///
/// Used for repair-action durations, which are heavy tailed in production
/// logs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal whose samples have expected value `mean` and
    /// standard deviation `cv * mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive or `cv` is negative.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "log-normal mean must be positive and finite, got {mean}"
        );
        assert!(
            cv.is_finite() && cv >= 0.0,
            "log-normal cv must be non-negative, got {cv}"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// The expected value of samples.
    pub fn mean(self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one sample via Box–Muller.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let z = standard_normal(rng);
        (self.mu + self.sigma * z).exp()
    }
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
///
/// Used for fault-type frequencies; the paper's Figure 5 shows a
/// heavy-tailed frequency ranking where 40 of 97 types cover 98.68% of
/// processes.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be non-negative, got {s}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point round-off at the top end.
        *cumulative.last_mut().expect("n > 0") = 1.0;
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is degenerate (it never is; `new` demands
    /// `n > 0`). Provided for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - lo
    }

    /// Draws one rank by inverse-CDF lookup (binary search).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

/// A discrete distribution over ranks `0..n` with arbitrary non-negative
/// weights, sampled by inverse-CDF lookup.
///
/// Used for fault-type frequencies: production error-type frequencies are
/// Zipf-*like* in the head but fall off faster in the tail (the paper's 40
/// most frequent of 97 types cover 98.68% of processes), which a pure
/// Zipf law cannot match.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Builds the distribution from weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative: {weights:?}"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Discrete { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no ranks (never; `new` demands one).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        self.cumulative[rank] - lo
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD150_17E5)
    }

    #[test]
    fn exponential_sample_mean_is_close() {
        let mut r = rng();
        let d = Exponential::from_mean(120.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 120.0).abs() < 4.0, "sample mean {mean}");
        assert!((d.mean() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_samples_are_positive() {
        let mut r = rng();
        let d = Exponential::new(5.0);
        assert!((0..1000).all(|_| d.sample(&mut r) > 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn lognormal_matches_requested_mean() {
        let mut r = rng();
        let d = LogNormal::from_mean_cv(1800.0, 0.5);
        assert!(
            (d.mean() - 1800.0).abs() < 1e-9,
            "analytic mean {}",
            d.mean()
        );
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 1800.0).abs() / 1800.0 < 0.03, "sample mean {mean}");
    }

    #[test]
    fn lognormal_zero_cv_is_degenerate() {
        let mut r = rng();
        let d = LogNormal::from_mean_cv(60.0, 0.0);
        for _ in 0..100 {
            assert!((d.sample(&mut r) - 60.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cv")]
    fn lognormal_rejects_negative_cv() {
        let _ = LogNormal::from_mean_cv(1.0, -0.1);
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(97, 1.1);
        let total: f64 = (0..97).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf total {total}");
        for k in 1..97 {
            assert!(z.pmf(k) <= z.pmf(k - 1), "pmf not monotone at {k}");
        }
        assert_eq!(z.pmf(97), 0.0);
    }

    #[test]
    fn zipf_sampling_respects_ranking() {
        let mut r = rng();
        let z = Zipf::new(10, 1.2);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[5], "{counts:?}");
        assert!(counts[1] > counts[9], "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let mut r = rng();
        let z = Zipf::new(1, 2.0);
        assert_eq!(z.len(), 1);
        for _ in 0..50 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn discrete_pmf_matches_weights() {
        let d = Discrete::new(&[1.0, 3.0, 0.0, 4.0]);
        assert!((d.pmf(0) - 0.125).abs() < 1e-12);
        assert!((d.pmf(1) - 0.375).abs() < 1e-12);
        assert_eq!(d.pmf(2), 0.0);
        assert!((d.pmf(3) - 0.5).abs() < 1e-12);
        assert_eq!(d.pmf(4), 0.0);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn discrete_sampling_skips_zero_weights() {
        let mut r = rng();
        let d = Discrete::new(&[1.0, 0.0, 1.0]);
        for _ in 0..1000 {
            assert_ne!(d.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn discrete_rejects_zero_total() {
        let _ = Discrete::new(&[0.0, 0.0]);
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
