//! Fault catalog generation.
//!
//! A [`FaultCatalog`] holds the ground-truth population of fault classes in
//! the simulated cluster. [`CatalogConfig`] generates one deterministically
//! from a seed, with the statistical shape reported by the paper:
//!
//! * 97 fault classes (paper §4.1: "we get 97 error types"), with Zipf
//!   frequencies such that the 40 most frequent classes account for ≈98.7%
//!   of recovery processes;
//! * each class emits one unique *primary* symptom plus a small cohesive
//!   set of secondary symptoms (paper §3.1: symptom sets are highly
//!   cohesive and share few intersections);
//! * most classes are *escalation-friendly* — cheap actions usually work,
//!   so the production cheapest-first policy is near optimal for them;
//! * a configurable few are *deceptive* — only a strong action works, so a
//!   learned policy that jumps straight to the strong action roughly halves
//!   the downtime (the paper observes this for its error types 1, 35, 39).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::RepairAction;
use crate::dist::Discrete;
use crate::fault::{ActionTiming, FaultId, FaultSpec, SecondarySymptom};
use crate::symptom::{synth_symptom_name, SymptomCatalog, SymptomId};

/// Configuration for generating a [`FaultCatalog`].
///
/// ```
/// use recovery_simlog::CatalogConfig;
///
/// let catalog = CatalogConfig::default().with_fault_types(20).generate(42);
/// assert_eq!(catalog.len(), 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogConfig {
    fault_types: usize,
    zipf_exponent: f64,
    head_ranks: usize,
    tail_suppression: f64,
    deceptive_ranks: Vec<usize>,
    secondary_symptoms_per_fault: (usize, usize),
    shared_symptoms: usize,
    shared_symptom_prob: f64,
    duration_cv: f64,
    failure_duration_factor: f64,
}

impl Default for CatalogConfig {
    /// The paper-shaped default: 97 fault classes with Zipf-like head
    /// frequencies (exponent 1.1 over the top 40 ranks) and a suppressed
    /// tail so the 40 most frequent classes carry ≈98.7% of the mass (the
    /// paper's 98.68%); deceptive classes sit at frequency ranks 0, 34 and
    /// 38 (the paper's error types 1, 35 and 39 in its 1-based numbering).
    fn default() -> Self {
        CatalogConfig {
            fault_types: 97,
            zipf_exponent: 1.1,
            head_ranks: 40,
            tail_suppression: 0.09,
            deceptive_ranks: vec![0, 34, 38],
            secondary_symptoms_per_fault: (1, 4),
            shared_symptoms: 1,
            shared_symptom_prob: 0.012,
            duration_cv: 0.35,
            failure_duration_factor: 1.0,
        }
    }
}

impl CatalogConfig {
    /// Sets the number of fault classes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_fault_types(mut self, n: usize) -> Self {
        assert!(n > 0, "catalog needs at least one fault type");
        self.fault_types = n;
        self
    }

    /// Sets the Zipf exponent of the fault-frequency head.
    pub fn with_zipf_exponent(mut self, s: f64) -> Self {
        self.zipf_exponent = s;
        self
    }

    /// Sets the frequency-law shape: ranks below `head_ranks` follow the
    /// Zipf head; ranks at or beyond it have their weight multiplied by
    /// `tail_suppression`.
    pub fn with_tail(mut self, head_ranks: usize, tail_suppression: f64) -> Self {
        assert!(
            tail_suppression.is_finite() && tail_suppression >= 0.0,
            "tail suppression must be non-negative"
        );
        self.head_ranks = head_ranks;
        self.tail_suppression = tail_suppression;
        self
    }

    /// Sets which frequency ranks get deceptive cure profiles (cheap
    /// actions almost never work). Ranks beyond the catalog size are
    /// ignored.
    pub fn with_deceptive_ranks(mut self, ranks: Vec<usize>) -> Self {
        self.deceptive_ranks = ranks;
        self
    }

    /// Sets the inclusive range of secondary symptoms per fault.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn with_secondary_symptoms(mut self, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi,
            "secondary symptom range must be ordered: {lo} > {hi}"
        );
        self.secondary_symptoms_per_fault = (lo, hi);
        self
    }

    /// Sets the coefficient of variation of action durations.
    pub fn with_duration_cv(mut self, cv: f64) -> Self {
        self.duration_cv = cv;
        self
    }

    /// Generates the catalog deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> FaultCatalog {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut symptoms = SymptomCatalog::new();
        let mut next_symptom = 0u32;
        let mut fresh_symptom = |symptoms: &mut SymptomCatalog| -> SymptomId {
            let id = symptoms.intern(&synth_symptom_name(next_symptom));
            next_symptom += 1;
            id
        };

        // Globally shared symptoms that occasionally show up in any process.
        let shared: Vec<SymptomId> = (0..self.shared_symptoms)
            .map(|_| fresh_symptom(&mut symptoms))
            .collect();

        let mut faults = Vec::with_capacity(self.fault_types);
        for rank in 0..self.fault_types {
            let primary = fresh_symptom(&mut symptoms);
            let (lo, hi) = self.secondary_symptoms_per_fault;
            let n_secondary = rng.gen_range(lo..=hi);
            let mut secondary: Vec<SecondarySymptom> = (0..n_secondary)
                .map(|_| SecondarySymptom {
                    symptom: fresh_symptom(&mut symptoms),
                    probability: rng.gen_range(0.55..0.95),
                    mean_delay_secs: rng.gen_range(60.0..1200.0),
                })
                .collect();
            for &s in &shared {
                secondary.push(SecondarySymptom {
                    symptom: s,
                    probability: self.shared_symptom_prob,
                    mean_delay_secs: rng.gen_range(60.0..1800.0),
                });
            }

            let deceptive = self.deceptive_ranks.contains(&rank);
            let cure_probs = if deceptive {
                // Cheap actions are near-useless; the strong action works.
                let weak = rng.gen_range(0.01..0.05);
                let reboot = weak + rng.gen_range(0.0..0.05);
                [weak, reboot, rng.gen_range(0.95..0.99), 1.0]
            } else {
                // Escalation-friendly: most errors are transient (a watch
                // or a reboot cures them), a reimage almost always works,
                // and the expensive manual repair stays a rare tail event.
                // With transients this common, the production
                // cheapest-first ladder is near optimal — the paper finds
                // its trained policy "nearly the same as the original" for
                // most types.
                let nop: f64 = rng.gen_range(0.5..0.75);
                let reboot = (nop + rng.gen_range(0.15..0.3)).min(0.95);
                let reimage = (reboot + rng.gen_range(0.04..0.1)).clamp(0.97, 0.995);
                [nop, reboot, reimage, 1.0]
            };

            // Per-fault timing: baseline durations scaled by a fault-local
            // severity factor so durations differ across types. Deceptive
            // faults are quick to fix once the right action is known —
            // their cost under the production policy is dominated by the
            // long observation windows wasted on the useless cheap rungs
            // (their symptoms recur slowly, so ruling the cheap action out
            // takes a while).
            let severity = if deceptive {
                rng.gen_range(0.35..0.55)
            } else {
                rng.gen_range(0.7..1.4)
            };
            let weak_observation_factor = if deceptive { 2.75 } else { 1.0 };
            let timings = RepairAction::ALL.map(|a| {
                let base = a.baseline_duration().as_secs_f64() * severity;
                // Manual repair (RMA) is dominated by a fairly uniform
                // service-level turnaround, not by fault specifics; the
                // automated actions keep the full heavy tail.
                let cv = if a == RepairAction::Rma {
                    self.duration_cv * 0.25
                } else {
                    self.duration_cv
                };
                let observe = if a <= RepairAction::Reboot {
                    weak_observation_factor
                } else {
                    1.0
                };
                ActionTiming {
                    success: crate::dist::LogNormal::from_mean_cv(base, cv),
                    failure: crate::dist::LogNormal::from_mean_cv(
                        base * a.failure_duration_factor() * self.failure_duration_factor * observe,
                        cv,
                    ),
                }
            });

            faults.push(FaultSpec::new(
                FaultId::new(rank as u32),
                primary,
                secondary,
                cure_probs,
                timings,
                rng.gen_range(60.0..900.0),
            ));
        }

        let weights: Vec<f64> = (0..self.fault_types)
            .map(|k| {
                let base = 1.0 / ((k + 1) as f64).powf(self.zipf_exponent);
                if k < self.head_ranks {
                    base
                } else {
                    base * self.tail_suppression
                }
            })
            .collect();
        FaultCatalog {
            faults,
            symptoms,
            frequency: Discrete::new(&weights),
        }
    }
}

/// The ground-truth population of fault classes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCatalog {
    faults: Vec<FaultSpec>,
    symptoms: SymptomCatalog,
    frequency: Discrete,
}

impl FaultCatalog {
    /// Number of fault classes.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the catalog is empty (never true for generated catalogs).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with the given id.
    pub fn fault(&self, id: FaultId) -> Option<&FaultSpec> {
        self.faults.get(id.index() as usize)
    }

    /// Iterates over all fault classes in frequency-rank order.
    pub fn iter(&self) -> impl Iterator<Item = &FaultSpec> {
        self.faults.iter()
    }

    /// The interned symptom catalog (descriptions for every symptom any
    /// fault can emit).
    pub fn symptoms(&self) -> &SymptomCatalog {
        &self.symptoms
    }

    /// Probability mass of the fault at frequency rank `rank`.
    pub fn frequency_pmf(&self, rank: usize) -> f64 {
        self.frequency.pmf(rank)
    }

    /// Samples a fault class according to the Zipf frequency law.
    pub fn sample_fault<R: Rng + ?Sized>(&self, rng: &mut R) -> &FaultSpec {
        &self.faults[self.frequency.sample(rng)]
    }

    /// Fraction of total fault mass carried by the `k` most frequent
    /// classes (the paper's 40-of-97 ≈ 98.68% statistic).
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        (0..k.min(self.len())).map(|r| self.frequency.pmf(r)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_catalog_matches_paper_shape() {
        let c = CatalogConfig::default().generate(7);
        assert_eq!(c.len(), 97);
        let cov = c.top_k_coverage(40);
        assert!(
            (0.97..=0.995).contains(&cov),
            "top-40 coverage {cov} should be near the paper's 98.68%"
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = CatalogConfig::default().generate(42);
        let b = CatalogConfig::default().generate(42);
        assert_eq!(a, b);
        let c = CatalogConfig::default().generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn primary_symptoms_are_unique_per_fault() {
        let c = CatalogConfig::default().generate(1);
        let mut seen = std::collections::HashSet::new();
        for f in c.iter() {
            assert!(
                seen.insert(f.primary_symptom()),
                "duplicate primary symptom"
            );
        }
    }

    #[test]
    fn deceptive_ranks_get_deceptive_profiles() {
        let c = CatalogConfig::default().generate(3);
        for rank in [0usize, 34, 38] {
            let f = c.fault(FaultId::new(rank as u32)).unwrap();
            assert!(
                f.cure_prob(RepairAction::Reboot) < 0.15,
                "rank {rank} should be deceptive"
            );
            assert!(f.cure_prob(RepairAction::Reimage) > 0.9);
        }
        // A non-deceptive rank escalates normally.
        let f = c.fault(FaultId::new(5)).unwrap();
        assert!(f.cure_prob(RepairAction::Reboot) > 0.3);
    }

    #[test]
    fn sample_fault_respects_zipf_ranking() {
        let c = CatalogConfig::default().generate(11);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0usize; c.len()];
        for _ in 0..30_000 {
            counts[c.sample_fault(&mut rng).id().index() as usize] += 1;
        }
        assert!(counts[0] > counts[10], "{:?}", &counts[..12]);
        assert!(counts[1] > counts[40]);
    }

    #[test]
    fn fault_lookup_out_of_range_is_none() {
        let c = CatalogConfig::default().with_fault_types(5).generate(0);
        assert!(c.fault(FaultId::new(4)).is_some());
        assert!(c.fault(FaultId::new(5)).is_none());
    }

    #[test]
    fn secondary_symptom_range_is_respected() {
        let c = CatalogConfig::default()
            .with_secondary_symptoms(2, 2)
            .generate(5);
        for f in c.iter() {
            // 2 unique + 1 shared low-probability symptom.
            assert_eq!(f.secondary_symptoms().len(), 2 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one fault type")]
    fn rejects_empty_catalog() {
        let _ = CatalogConfig::default().with_fault_types(0);
    }

    #[test]
    fn top_k_coverage_saturates_at_one() {
        let c = CatalogConfig::default().with_fault_types(10).generate(0);
        assert!((c.top_k_coverage(10) - 1.0).abs() < 1e-9);
        assert!((c.top_k_coverage(100) - 1.0).abs() < 1e-9);
        assert!(c.top_k_coverage(1) < 1.0);
    }
}
