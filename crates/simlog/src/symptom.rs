//! Error symptoms and the symptom catalog.
//!
//! A *symptom* is the description text of an error entry in the recovery
//! log, e.g. `error:IFM-ISNWatchdog` or `errorHardware:EventLog` (paper
//! Table 1). The simulator interns every distinct description into a
//! [`SymptomId`] through a [`SymptomCatalog`], which is the only place the
//! textual names live; the rest of the workspace works with ids.

use std::collections::HashMap;
use std::fmt;

/// Interned identifier of one distinct symptom description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymptomId(u32);

impl SymptomId {
    /// Creates a symptom id from its catalog index.
    ///
    /// Usually obtained from [`SymptomCatalog::intern`] instead.
    pub const fn new(index: u32) -> Self {
        SymptomId(index)
    }

    /// The catalog index of this symptom.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SymptomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Bidirectional mapping between symptom descriptions and [`SymptomId`]s.
///
/// ```
/// use recovery_simlog::SymptomCatalog;
///
/// let mut catalog = SymptomCatalog::new();
/// let id = catalog.intern("errorHardware:EventLog");
/// assert_eq!(catalog.name(id), Some("errorHardware:EventLog"));
/// assert_eq!(catalog.intern("errorHardware:EventLog"), id); // stable
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymptomCatalog {
    names: Vec<String>,
    by_name: HashMap<String, SymptomId>,
}

impl SymptomCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id. Idempotent.
    pub fn intern(&mut self, name: &str) -> SymptomId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SymptomId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name` without interning it.
    pub fn id(&self, name: &str) -> Option<SymptomId> {
        self.by_name.get(name).copied()
    }

    /// The description text of `id`, if the id belongs to this catalog.
    pub fn name(&self, id: SymptomId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct symptoms interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SymptomId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymptomId(i as u32), n.as_str()))
    }
}

/// Component names used to synthesize realistic symptom descriptions.
const COMPONENTS: &[&str] = &[
    "IFM-ISNWatchdog",
    "EventLog",
    "DiskScrubber",
    "NetMonitor",
    "SvcHeartbeat",
    "MemCheck",
    "FsIntegrity",
    "RaidCtl",
    "KernelTrap",
    "PowerMgr",
    "ThermalProbe",
    "NicDriver",
    "SmartCtl",
    "PageAlloc",
    "IoScheduler",
    "ClockSync",
    "BiosPost",
    "FanCtl",
    "CacheCoherence",
    "LeaseManager",
];

/// Symptom categories that prefix the description, mirroring the mixture of
/// `error:` and `errorHardware:` style entries in the paper's Table 1.
const CATEGORIES: &[&str] = &["error", "errorHardware", "errorSoftware", "errorNetwork"];

/// Deterministically synthesizes the `n`-th symptom description.
///
/// The mapping is injective: distinct `n` always produce distinct names, so
/// a generated catalog never aliases two logical symptoms.
pub fn synth_symptom_name(n: u32) -> String {
    let cat = CATEGORIES[(n as usize / COMPONENTS.len()) % CATEGORIES.len()];
    let comp = COMPONENTS[n as usize % COMPONENTS.len()];
    let series = n as usize / (COMPONENTS.len() * CATEGORIES.len());
    if series == 0 {
        format!("{cat}:{comp}")
    } else {
        format!("{cat}:{comp}-{series}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut c = SymptomCatalog::new();
        let a = c.intern("error:A");
        let b = c.intern("error:B");
        assert_ne!(a, b);
        assert_eq!(c.intern("error:A"), a);
        assert_eq!(c.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn lookup_both_directions() {
        let mut c = SymptomCatalog::new();
        let id = c.intern("errorHardware:EventLog");
        assert_eq!(c.id("errorHardware:EventLog"), Some(id));
        assert_eq!(c.name(id), Some("errorHardware:EventLog"));
        assert_eq!(c.id("nope"), None);
        assert_eq!(c.name(SymptomId::new(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut c = SymptomCatalog::new();
        c.intern("x");
        c.intern("y");
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs[0], (SymptomId::new(0), "x"));
        assert_eq!(pairs[1], (SymptomId::new(1), "y"));
    }

    #[test]
    fn empty_catalog_reports_empty() {
        let c = SymptomCatalog::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn synth_names_are_unique_and_well_formed() {
        let mut seen = HashSet::new();
        for n in 0..500 {
            let name = synth_symptom_name(n);
            assert!(name.contains(':'), "{name}");
            assert!(seen.insert(name), "duplicate name at {n}");
        }
    }

    #[test]
    fn synth_first_name_matches_paper_style() {
        assert_eq!(synth_symptom_name(0), "error:IFM-ISNWatchdog");
    }
}
