//! Summary statistics over recovery processes.
//!
//! These are the raw ingredients of the paper's Figures 5 (count of the
//! most frequent error types) and 6 (total downtime per error type under
//! the user-defined policy), grouped by a process's initial symptom — the
//! paper's error-type proxy.

use std::collections::HashMap;

use crate::process::RecoveryProcess;
use crate::symptom::SymptomId;
use crate::time::SimDuration;

/// Per-initial-symptom aggregate over a set of recovery processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymptomStats {
    /// The initial symptom (error-type proxy).
    pub symptom: SymptomId,
    /// Number of processes that started with this symptom.
    pub count: usize,
    /// Total downtime across those processes.
    pub total_downtime: SimDuration,
}

impl SymptomStats {
    /// Mean time to repair for this symptom.
    pub fn mttr(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(self.total_downtime.as_secs() / self.count as u64)
        }
    }
}

/// Groups processes by initial symptom and aggregates count and downtime,
/// returned in descending count order (the frequency ranking used
/// throughout the paper's figures).
pub fn by_initial_symptom(processes: &[RecoveryProcess]) -> Vec<SymptomStats> {
    let mut map: HashMap<SymptomId, (usize, SimDuration)> = HashMap::new();
    for p in processes {
        let e = map
            .entry(p.initial_symptom())
            .or_insert((0, SimDuration::ZERO));
        e.0 += 1;
        e.1 += p.downtime();
    }
    let mut out: Vec<SymptomStats> = map
        .into_iter()
        .map(|(symptom, (count, total_downtime))| SymptomStats {
            symptom,
            count,
            total_downtime,
        })
        .collect();
    out.sort_by(|a, b| b.count.cmp(&a.count).then(a.symptom.cmp(&b.symptom)));
    out
}

/// Total downtime across all processes.
pub fn total_downtime(processes: &[RecoveryProcess]) -> SimDuration {
    processes.iter().map(|p| p.downtime()).sum()
}

/// Mean time to repair across all processes, or zero when empty.
pub fn mttr(processes: &[RecoveryProcess]) -> SimDuration {
    if processes.is_empty() {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(total_downtime(processes).as_secs() / processes.len() as u64)
    }
}

/// Fraction of processes whose initial symptom is among the `k` most
/// frequent ones (the paper's "40 most frequent error types constitute
/// 98.68% of the total recovery processes").
pub fn top_k_process_coverage(processes: &[RecoveryProcess], k: usize) -> f64 {
    if processes.is_empty() {
        return 0.0;
    }
    let stats = by_initial_symptom(processes);
    let covered: usize = stats.iter().take(k).map(|s| s.count).sum();
    covered as f64 / processes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, LogGenerator};
    use crate::machine::MachineId;
    use crate::process::RecoveryProcess;
    use crate::time::SimTime;

    fn proc(symptom: u32, start: u64, downtime: u64) -> RecoveryProcess {
        RecoveryProcess::new(
            MachineId::new(0),
            vec![(SimTime::from_secs(start), SymptomId::new(symptom))],
            vec![],
            SimTime::from_secs(start + downtime),
        )
    }

    #[test]
    fn aggregates_by_symptom_in_count_order() {
        let processes = vec![
            proc(0, 0, 100),
            proc(1, 10, 50),
            proc(1, 20, 70),
            proc(2, 30, 1000),
        ];
        let stats = by_initial_symptom(&processes);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].symptom, SymptomId::new(1));
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_downtime, SimDuration::from_secs(120));
        assert_eq!(stats[0].mttr(), SimDuration::from_secs(60));
    }

    #[test]
    fn totals_and_mttr() {
        let processes = vec![proc(0, 0, 100), proc(0, 10, 300)];
        assert_eq!(total_downtime(&processes), SimDuration::from_secs(400));
        assert_eq!(mttr(&processes), SimDuration::from_secs(200));
        assert_eq!(mttr(&[]), SimDuration::ZERO);
    }

    #[test]
    fn top_k_coverage_bounds() {
        let processes = vec![proc(0, 0, 1), proc(0, 1, 1), proc(1, 2, 1), proc(2, 3, 1)];
        assert!((top_k_process_coverage(&processes, 1) - 0.5).abs() < 1e-12);
        assert!((top_k_process_coverage(&processes, 3) - 1.0).abs() < 1e-12);
        assert_eq!(top_k_process_coverage(&[], 3), 0.0);
    }

    #[test]
    fn generated_log_is_zipf_shaped() {
        let mut generated = LogGenerator::new(GeneratorConfig::small()).generate();
        let procs = generated.log.split_processes();
        let stats = by_initial_symptom(&procs);
        assert!(stats.len() > 3);
        // Counts are sorted descending and heavily skewed toward rank 0.
        assert!(stats[0].count >= stats[stats.len() - 1].count * 2);
    }
}
