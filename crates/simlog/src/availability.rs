//! Dependability accounting: MTBF, MTTR and availability.
//!
//! The paper frames recovery-policy generation in classical
//! dependability terms (§1): *reliability* is characterized by the mean
//! time between failures, *availability* by the mean time to repair.
//! This module computes those figures — per machine and cluster-wide —
//! from a recovery log, so policy improvements can be reported as
//! availability gains ("one more nine") rather than raw seconds.

use std::collections::BTreeMap;

use crate::machine::MachineId;
use crate::process::RecoveryProcess;
use crate::time::{SimDuration, SimTime};

/// Dependability summary over one observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityReport {
    /// Machines that appear in the processes.
    pub machines: usize,
    /// Recovery processes (failures) observed.
    pub failures: usize,
    /// Total downtime across all processes.
    pub downtime: SimDuration,
    /// The observation window used for uptime accounting.
    pub window: SimDuration,
    /// Mean time to repair: `downtime / failures`.
    pub mttr: SimDuration,
    /// Mean time between failures per machine:
    /// `machines * window / failures`.
    pub mtbf: SimDuration,
    /// Availability: `1 - downtime / (machines * window)`.
    pub availability: f64,
}

impl AvailabilityReport {
    /// The number of leading nines of availability (0.99999 → 5, i.e.
    /// "five nines"). Capped at 9 to keep the arithmetic meaningful at
    /// simulation precision.
    pub fn nines(&self) -> u32 {
        if self.availability >= 1.0 {
            return 9;
        }
        let mut nines = 0;
        let mut a = self.availability;
        while nines < 9 && a >= 0.9 {
            a = (a - 0.9) * 10.0;
            nines += 1;
        }
        nines
    }
}

/// Computes the dependability report for `processes` over the window
/// `[window_start, window_end]`.
///
/// ```
/// use recovery_simlog::{availability, GeneratorConfig, LogGenerator};
///
/// let mut generated = LogGenerator::new(GeneratorConfig::small()).generate();
/// let processes = generated.log.split_processes();
/// let (start, end) = generated.log.time_span().unwrap();
/// let report = availability(&processes, start, end);
/// assert!(report.availability > 0.9 && report.availability < 1.0);
/// assert!(report.failures == processes.len());
/// ```
///
/// # Panics
///
/// Panics if the window is empty (end not after start).
pub fn availability(
    processes: &[RecoveryProcess],
    window_start: SimTime,
    window_end: SimTime,
) -> AvailabilityReport {
    let window = window_end.duration_since(window_start);
    assert!(
        window > SimDuration::ZERO,
        "observation window must be non-empty"
    );
    let mut machines: BTreeMap<MachineId, ()> = BTreeMap::new();
    let mut downtime = SimDuration::ZERO;
    for p in processes {
        machines.insert(p.machine(), ());
        downtime += p.downtime();
    }
    let failures = processes.len();
    let machine_count = machines.len().max(1);
    let machine_seconds = machine_count as u64 * window.as_secs();
    let mttr = if failures == 0 {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs(downtime.as_secs() / failures as u64)
    };
    let mtbf = if failures == 0 {
        window
    } else {
        SimDuration::from_secs(machine_seconds / failures as u64)
    };
    let availability = if machine_seconds == 0 {
        1.0
    } else {
        (1.0 - downtime.as_secs_f64() / machine_seconds as f64).max(0.0)
    };
    AvailabilityReport {
        machines: machines.len(),
        failures,
        downtime,
        window,
        mttr,
        mtbf,
        availability,
    }
}

/// Per-machine dependability rows, sorted by machine id.
pub fn availability_by_machine(
    processes: &[RecoveryProcess],
    window_start: SimTime,
    window_end: SimTime,
) -> Vec<(MachineId, AvailabilityReport)> {
    let mut by_machine: BTreeMap<MachineId, Vec<RecoveryProcess>> = BTreeMap::new();
    for p in processes {
        by_machine.entry(p.machine()).or_default().push(p.clone());
    }
    by_machine
        .into_iter()
        .map(|(m, procs)| (m, availability(&procs, window_start, window_end)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symptom::SymptomId;

    fn proc(machine: u32, start: u64, downtime: u64) -> RecoveryProcess {
        RecoveryProcess::new(
            MachineId::new(machine),
            vec![(SimTime::from_secs(start), SymptomId::new(0))],
            vec![],
            SimTime::from_secs(start + downtime),
        )
    }

    #[test]
    fn report_matches_hand_computation() {
        // 2 machines over 1000 s; machine 0 down 100 s, machine 1 down 300 s.
        let processes = vec![proc(0, 0, 100), proc(1, 200, 300)];
        let r = availability(&processes, SimTime::EPOCH, SimTime::from_secs(1000));
        assert_eq!(r.machines, 2);
        assert_eq!(r.failures, 2);
        assert_eq!(r.downtime, SimDuration::from_secs(400));
        assert_eq!(r.mttr, SimDuration::from_secs(200));
        assert_eq!(r.mtbf, SimDuration::from_secs(1000));
        assert!((r.availability - 0.8).abs() < 1e-12);
        assert_eq!(r.nines(), 0);
    }

    #[test]
    fn high_availability_counts_nines() {
        let processes = vec![proc(0, 0, 1)];
        let r = availability(&processes, SimTime::EPOCH, SimTime::from_secs(100_000));
        // 0.99999 = 99.999% = "five nines".
        assert!((r.availability - 0.99999).abs() < 1e-9);
        assert_eq!(r.nines(), 5);
    }

    #[test]
    fn no_failures_is_fully_available() {
        let r = availability(&[], SimTime::EPOCH, SimTime::from_secs(500));
        assert_eq!(r.failures, 0);
        assert_eq!(r.availability, 1.0);
        assert_eq!(r.mttr, SimDuration::ZERO);
        assert_eq!(r.mtbf, SimDuration::from_secs(500));
        assert_eq!(r.nines(), 9);
    }

    #[test]
    fn per_machine_rows_split_the_fleet() {
        let processes = vec![proc(0, 0, 100), proc(0, 500, 100), proc(3, 100, 50)];
        let rows = availability_by_machine(&processes, SimTime::EPOCH, SimTime::from_secs(1000));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, MachineId::new(0));
        assert_eq!(rows[0].1.failures, 2);
        assert_eq!(rows[1].0, MachineId::new(3));
        assert_eq!(rows[1].1.downtime, SimDuration::from_secs(50));
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn rejects_empty_window() {
        let _ = availability(&[], SimTime::from_secs(5), SimTime::from_secs(5));
    }

    #[test]
    fn availability_is_floored_at_zero() {
        // Downtime exceeding the window (overlapping machines) floors at 0.
        let processes = vec![proc(0, 0, 5_000)];
        let r = availability(&processes, SimTime::EPOCH, SimTime::from_secs(1000));
        assert_eq!(r.availability, 0.0);
    }
}
