//! Cross-command CLI session state: telemetry (from `--metrics-out`) and
//! the progress logger (`--log-format`, `-v`).

use recovery_telemetry::{Event, JsonlSink, Telemetry};

use crate::args::Args;

/// How progress and diagnostic lines are rendered on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Plain human-readable lines (the default).
    Text,
    /// One JSON object per line, `{"type":"log","level":...,"msg":...}`.
    Json,
}

/// The per-invocation session: built once from the global flags, passed
/// to every subcommand.
#[derive(Debug)]
pub struct Session {
    /// Telemetry handle; enabled only when `--metrics-out` was given.
    pub telemetry: Telemetry,
    format: LogFormat,
    verbosity: u8,
}

impl Session {
    /// Builds the session from the parsed global flags: `--metrics-out
    /// <path>` (JSONL events + final snapshot), `--log-format text|json`,
    /// and `-v`/`-vv` verbosity.
    ///
    /// # Errors
    ///
    /// Returns a message for an unwritable metrics path or an unknown
    /// log format.
    pub fn from_args(args: &Args) -> Result<Session, String> {
        let telemetry = match args.flag("metrics-out") {
            Some(path) => {
                let sink =
                    JsonlSink::to_file(path).map_err(|e| format!("--metrics-out {path}: {e}"))?;
                Telemetry::with_sink(sink)
            }
            None => Telemetry::disabled(),
        };
        let format = match args.flag("log-format").unwrap_or("text") {
            "text" => LogFormat::Text,
            "json" => LogFormat::Json,
            other => return Err(format!("unknown --log-format {other:?} (text, json)")),
        };
        Ok(Session {
            telemetry,
            format,
            verbosity: args.verbosity(),
        })
    }

    /// Logs a progress line (always shown) on stderr.
    pub fn info(&self, msg: &str) {
        self.log("info", msg);
    }

    /// Logs a diagnostic line, shown only at `-v` or higher.
    pub fn debug(&self, msg: &str) {
        if self.verbosity >= 1 {
            self.log("debug", msg);
        }
    }

    fn log(&self, level: &str, msg: &str) {
        match self.format {
            LogFormat::Text => eprintln!("{msg}"),
            LogFormat::Json => eprintln!(
                "{}",
                Event::new("log")
                    .with("level", level)
                    .with("msg", msg)
                    .to_json()
            ),
        }
    }

    /// Writes the final metrics snapshot and flushes the sink. Called
    /// once after the subcommand returns.
    pub fn finish(&self) {
        self.telemetry.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults_are_disabled_text() {
        let s = Session::from_args(&parse(&[])).unwrap();
        assert!(!s.telemetry.is_enabled());
        assert_eq!(s.format, LogFormat::Text);
        assert_eq!(s.verbosity, 0);
    }

    #[test]
    fn json_format_and_verbosity_parse() {
        let s = Session::from_args(&parse(&["--log-format", "json", "-vv"])).unwrap();
        assert_eq!(s.format, LogFormat::Json);
        assert_eq!(s.verbosity, 2);
    }

    #[test]
    fn unknown_format_is_rejected() {
        assert!(Session::from_args(&parse(&["--log-format", "xml"])).is_err());
    }

    #[test]
    fn metrics_out_enables_telemetry() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "autorecover-session-test-{}.jsonl",
            std::process::id()
        ));
        let s = Session::from_args(&parse(&["--metrics-out", path.to_str().unwrap()])).unwrap();
        assert!(s.telemetry.is_enabled());
        s.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"type\":\"snapshot\""), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
