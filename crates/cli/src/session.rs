//! Cross-command CLI session state: telemetry (from `--metrics-out`),
//! the live exposition server (from `--metrics-listen`), and the
//! progress logger (`--log-format`, `-v`).

use std::time::Duration;

use recovery_telemetry::{Event, EventBus, JsonlSink, MetricsServer, Telemetry};

use crate::args::Args;

/// How progress and diagnostic lines are rendered on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Plain human-readable lines (the default).
    Text,
    /// One JSON object per line, `{"type":"log","level":...,"msg":...}`.
    Json,
}

/// The per-invocation session: built once from the global flags, passed
/// to every subcommand.
#[derive(Debug)]
pub struct Session {
    /// Telemetry handle; enabled when `--metrics-out` or
    /// `--metrics-listen` was given.
    pub telemetry: Telemetry,
    /// The live exposition server, when `--metrics-listen` was given.
    server: Option<MetricsServer>,
    /// How long [`Session::finish`] keeps the server up after the
    /// command completes (`--serve-linger SECS`), so scrapers can fetch
    /// the final state of short-lived runs.
    linger: Duration,
    format: LogFormat,
    verbosity: u8,
}

impl Session {
    /// Builds the session from the parsed global flags: `--metrics-out
    /// <path>` (JSONL events + final snapshot), `--metrics-listen <addr>`
    /// (live `/metrics`, `/snapshot`, `/healthz`, `/events` endpoints),
    /// `--serve-linger <secs>`, `--log-format text|json`, and `-v`/`-vv`
    /// verbosity.
    ///
    /// # Errors
    ///
    /// Returns a message for an unwritable metrics path, an unbindable
    /// listen address, or an unknown log format.
    pub fn from_args(args: &Args) -> Result<Session, String> {
        let sink = match args.flag("metrics-out") {
            Some(path) => {
                Some(JsonlSink::to_file(path).map_err(|e| format!("--metrics-out {path}: {e}"))?)
            }
            None => None,
        };
        let listen = args.flag("metrics-listen");
        let telemetry = match (sink, listen) {
            (None, None) => Telemetry::disabled(),
            (sink, listen) => {
                // A live listener always gets a bus so `/events` streams.
                Telemetry::with_parts(sink, listen.map(|_| EventBus::default()))
            }
        };
        let server = match listen {
            Some(addr) => Some(
                MetricsServer::bind(addr, telemetry.clone())
                    .map_err(|e| format!("--metrics-listen {addr}: {e}"))?,
            ),
            None => None,
        };
        let linger_secs: f64 = args.flag_or("serve-linger", 0.0f64)?;
        if !(linger_secs >= 0.0 && linger_secs.is_finite()) {
            return Err(format!("--serve-linger must be >= 0, got {linger_secs}"));
        }
        let format = match args.flag("log-format").unwrap_or("text") {
            "text" => LogFormat::Text,
            "json" => LogFormat::Json,
            other => return Err(format!("unknown --log-format {other:?} (text, json)")),
        };
        let session = Session {
            telemetry,
            server,
            linger: Duration::from_secs_f64(linger_secs),
            format,
            verbosity: args.verbosity(),
        };
        if let Some(addr) = session.serve_addr() {
            session.info(&format!(
                "serving live metrics on http://{addr}/ (/metrics /snapshot /healthz /events)"
            ));
        }
        Ok(session)
    }

    /// The bound address of the live exposition server, if one is up.
    pub fn serve_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// Logs a progress line (always shown) on stderr.
    pub fn info(&self, msg: &str) {
        self.log("info", msg);
    }

    /// Logs a diagnostic line, shown only at `-v` or higher.
    pub fn debug(&self, msg: &str) {
        if self.verbosity >= 1 {
            self.log("debug", msg);
        }
    }

    fn log(&self, level: &str, msg: &str) {
        match self.format {
            LogFormat::Text => eprintln!("{msg}"),
            LogFormat::Json => eprintln!(
                "{}",
                Event::new("log")
                    .with("level", level)
                    .with("msg", msg)
                    .to_json()
            ),
        }
    }

    /// Writes the final metrics snapshot, flushes the sink, and — when a
    /// live server is up — keeps it reachable for `--serve-linger`, then
    /// closes the bus so `/events` streams terminate cleanly. Called
    /// once after the subcommand returns.
    pub fn finish(&self) {
        self.telemetry.finish();
        if let Some(server) = &self.server {
            if !self.linger.is_zero() {
                std::thread::sleep(self.linger);
            }
            if let Some(bus) = self.telemetry.bus() {
                bus.close();
            }
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults_are_disabled_text() {
        let s = Session::from_args(&parse(&[])).unwrap();
        assert!(!s.telemetry.is_enabled());
        assert_eq!(s.format, LogFormat::Text);
        assert_eq!(s.verbosity, 0);
    }

    #[test]
    fn json_format_and_verbosity_parse() {
        let s = Session::from_args(&parse(&["--log-format", "json", "-vv"])).unwrap();
        assert_eq!(s.format, LogFormat::Json);
        assert_eq!(s.verbosity, 2);
    }

    #[test]
    fn unknown_format_is_rejected() {
        assert!(Session::from_args(&parse(&["--log-format", "xml"])).is_err());
    }

    #[test]
    fn metrics_listen_enables_telemetry_bus_and_server() {
        let s = Session::from_args(&parse(&["--metrics-listen", "127.0.0.1:0"])).unwrap();
        assert!(s.telemetry.is_enabled());
        assert!(s.telemetry.bus().is_some(), "listener implies a bus");
        let addr = s.serve_addr().expect("server bound");
        assert_ne!(addr.port(), 0, "port 0 resolves to an ephemeral port");
        s.finish();
        assert!(s.telemetry.bus().unwrap().is_closed());
    }

    #[test]
    fn bad_listen_address_is_a_clean_error() {
        let err = Session::from_args(&parse(&["--metrics-listen", "256.0.0.1:99999"]))
            .expect_err("unbindable address");
        assert!(err.contains("--metrics-listen"), "{err}");
    }

    #[test]
    fn metrics_out_enables_telemetry() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "autorecover-session-test-{}.jsonl",
            std::process::id()
        ));
        let s = Session::from_args(&parse(&["--metrics-out", path.to_str().unwrap()])).unwrap();
        assert!(s.telemetry.is_enabled());
        s.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"type\":\"snapshot\""), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
