//! Minimal flag parsing for the `autorecover` CLI — positional arguments,
//! `--flag value` pairs, and `-v`/`-vv` verbosity switches, no external
//! dependencies.

use std::collections::HashMap;

/// Parsed command line: positionals in order, flags by name, and a
/// verbosity level counted from `-v` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    verbosity: u8,
}

impl Args {
    /// Parses everything after the subcommand name.
    ///
    /// # Errors
    ///
    /// Returns a message when a `--flag` has no value.
    pub fn parse<I: Iterator<Item = String>>(mut raw: I) -> Result<Self, String> {
        let mut args = Args::default();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    args.flags.insert(k.to_owned(), v.to_owned());
                } else {
                    let v = raw
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    args.flags.insert(name.to_owned(), v);
                }
            } else if a.len() > 1 && a.starts_with('-') && a[1..].bytes().all(|b| b == b'v') {
                // -v / -vv / -vvv: stacked verbosity switches.
                args.verbosity = args.verbosity.saturating_add((a.len() - 1) as u8);
            } else {
                args.positional.push(a);
            }
        }
        Ok(args)
    }

    /// Verbosity level: 0 by default, +1 per `v` in `-v`-style switches.
    pub fn verbosity(&self) -> u8 {
        self.verbosity
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// A string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A parsed numeric/typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the flag is present but unparsable.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = parse(&["log.txt", "--fraction", "0.4", "--method=tree", "more"]);
        assert_eq!(a.positional(0), Some("log.txt"));
        assert_eq!(a.positional(1), Some("more"));
        assert_eq!(a.positional(2), None);
        assert_eq!(a.flag("fraction"), Some("0.4"));
        assert_eq!(a.flag("method"), Some("tree"));
        assert_eq!(a.flag("nope"), None);
    }

    #[test]
    fn typed_flags_with_defaults() {
        let a = parse(&["--scale", "0.5"]);
        assert_eq!(a.flag_or("scale", 1.0f64).unwrap(), 0.5);
        assert_eq!(a.flag_or("seed", 7u64).unwrap(), 7);
        assert!(a.flag_or::<f64>("scale", 1.0).is_ok());
    }

    #[test]
    fn reports_missing_value_and_bad_parse() {
        assert!(Args::parse(["--scale".to_string()].into_iter()).is_err());
        let a = parse(&["--scale", "abc"]);
        assert!(a.flag_or::<f64>("scale", 1.0).is_err());
    }

    #[test]
    fn verbosity_switches_stack() {
        assert_eq!(parse(&[]).verbosity(), 0);
        assert_eq!(parse(&["-v"]).verbosity(), 1);
        assert_eq!(parse(&["-vv"]).verbosity(), 2);
        assert_eq!(parse(&["-v", "log.txt", "-v"]).verbosity(), 2);
        // Non-verbosity single-dash tokens stay positional.
        assert_eq!(parse(&["-x"]).positional(0), Some("-x"));
        assert_eq!(parse(&["-"]).positional(0), Some("-"));
    }
}
