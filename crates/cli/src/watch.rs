//! `autorecover watch` — a live view of a running continuous loop.
//!
//! Consumes the telemetry event stream from either source:
//!
//! * **network**: an `/events` NDJSON stream from a process started with
//!   `--metrics-listen` (pass `http://host:port` or `host:port`);
//! * **file**: a `--metrics-out` JSONL file, optionally tailed with
//!   `--follow true` while the producing run is still going.
//!
//! Window summary events render as the same table `loop` prints, plus a
//! running summary line (fallback rate, converged/trained type counts,
//! loop phase). Live `convergence` events fold into a per-window
//! convergence line (verdict tally and worst final Q-delta), and
//! `access` events from a serving daemon accumulate into a per-route
//! latency line (count and mean ms per route). With `--refresh true`
//! the screen is redrawn in place on every update (a refreshing TTY
//! dashboard); the default appends rows, which is what CI logs and
//! piped output want.
//!
//! The watcher is a pure consumer: it never writes to the observed
//! process, and a stalled watcher at worst drops events on the bus
//! (never blocking training).

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use recovery_telemetry::flatjson::{get, parse_line as parse_event_line, Field};

use crate::args::Args;
use crate::session::Session;

/// The accumulated view of one loop run, rebuilt event by event.
#[derive(Debug, Default)]
struct WatchState {
    /// Rendered window rows, in arrival order.
    rows: Vec<String>,
    windows: u64,
    fallbacks: u64,
    /// Error types that finished training / that converged.
    types_finished: BTreeSet<String>,
    types_converged: BTreeSet<String>,
    phase: String,
    /// Version and hash of the last `serve.reload` seen, when watching a
    /// serving daemon.
    policy: Option<(u64, String)>,
    /// Number of `serve.reload` events seen.
    reloads: u64,
    /// Live convergence stream: window of the most recent `convergence`
    /// event, how many of that window's types converged vs finished, and
    /// the worst (largest) final Q-delta seen in the window.
    convergence: Option<(u64, u64, u64, f64)>,
    /// Per-route request tallies from `access` events: route label →
    /// (request count, total latency ms). BTreeMap so the rendered line
    /// is stable regardless of arrival order.
    routes: BTreeMap<String, (u64, f64)>,
    /// Whether the producing run's final snapshot has been seen.
    finished: bool,
}

const HEADER: &str = "window  processes        mttr    policy    entries  status";

impl WatchState {
    /// Folds one event line in; returns true when the view changed.
    fn apply(&mut self, line: &str) -> bool {
        let Some(fields) = parse_event_line(line) else {
            return false;
        };
        let Some(kind) = get(&fields, "type").and_then(Field::as_str) else {
            return false;
        };
        match kind {
            "window" => {
                let num = |key: &str| get(&fields, key).and_then(Field::as_f64).unwrap_or(0.0);
                let status = get(&fields, "status")
                    .and_then(Field::as_str)
                    .unwrap_or("?")
                    .to_owned();
                let learned = matches!(get(&fields, "learned_policy"), Some(Field::Bool(true)));
                self.rows.push(format!(
                    "{:>6}  {:>9}  {:>9.1}s  {:>8}  {:>9}  {}",
                    num("window") as u64,
                    num("processes") as u64,
                    num("mttr_s"),
                    if learned { "learned" } else { "user" },
                    num("policy_entries") as u64,
                    status
                ));
                self.windows += 1;
                self.fallbacks = num("fallbacks") as u64;
                true
            }
            "training_finished" => {
                if let Some(t) = get(&fields, "error_type").and_then(Field::as_str) {
                    self.types_finished.insert(t.to_owned());
                    if matches!(get(&fields, "converged"), Some(Field::Bool(true))) {
                        self.types_converged.insert(t.to_owned());
                    }
                }
                true
            }
            "health" => {
                if let Some(phase) = get(&fields, "phase").and_then(Field::as_str) {
                    self.phase = phase.to_owned();
                }
                true
            }
            "serve.reload" => {
                let version = get(&fields, "version")
                    .and_then(Field::as_f64)
                    .unwrap_or(0.0) as u64;
                let hash = get(&fields, "hash")
                    .and_then(Field::as_str)
                    .unwrap_or("?")
                    .to_owned();
                self.policy = Some((version, hash));
                self.reloads += 1;
                true
            }
            "convergence" => {
                let num = |key: &str| get(&fields, key).and_then(Field::as_f64).unwrap_or(0.0);
                let window = num("window") as u64;
                let converged = matches!(get(&fields, "converged"), Some(Field::Bool(true)));
                let q_delta = num("final_q_delta");
                // A new window restarts the tally; within a window each
                // event is one error type's finished retraining.
                let (_, done, total, worst) = match self.convergence {
                    Some(state @ (w, ..)) if w == window => state,
                    _ => (window, 0, 0, 0.0),
                };
                self.convergence = Some((
                    window,
                    done + u64::from(converged),
                    total + 1,
                    if q_delta > worst { q_delta } else { worst },
                ));
                true
            }
            "access" => {
                let Some(route) = get(&fields, "route").and_then(Field::as_str) else {
                    return false;
                };
                let ms = get(&fields, "ms").and_then(Field::as_f64).unwrap_or(0.0);
                let entry = self.routes.entry(route.to_owned()).or_insert((0, 0.0));
                entry.0 += 1;
                entry.1 += ms;
                true
            }
            "snapshot" => {
                self.finished = true;
                true
            }
            _ => false,
        }
    }

    fn summary(&self) -> String {
        let rate = if self.windows > 0 {
            100.0 * self.fallbacks as f64 / self.windows as f64
        } else {
            0.0
        };
        let mut out = format!(
            "windows: {} | fallbacks: {} ({rate:.0}%) | converged types: {}/{}",
            self.windows,
            self.fallbacks,
            self.types_converged.len(),
            self.types_finished.len(),
        );
        if let Some((version, hash)) = &self.policy {
            out.push_str(&format!(
                " | serving: v{version} ({hash}), {} reloads",
                self.reloads
            ));
        }
        if let Some((window, done, total, worst)) = &self.convergence {
            out.push_str(&format!(
                " | window {window} convergence: {done}/{total} (worst dq {worst:.4})"
            ));
        }
        if !self.phase.is_empty() {
            out.push_str(&format!(" | phase: {}", self.phase));
        }
        if !self.routes.is_empty() {
            let rendered: Vec<String> = self
                .routes
                .iter()
                .map(|(route, (count, total_ms))| {
                    format!("{route} {count}x {:.1}ms", total_ms / *count as f64)
                })
                .collect();
            out.push_str(&format!("\nroutes: {}", rendered.join(" | ")));
        }
        out
    }

    /// Redraws the whole table (refresh mode): clear screen, header,
    /// the last `limit` rows (0 = all), summary.
    fn redraw(&self, limit: usize) {
        let mut out = String::from("\x1b[2J\x1b[H");
        out.push_str(HEADER);
        out.push('\n');
        let skip = if limit > 0 && self.rows.len() > limit {
            self.rows.len() - limit
        } else {
            0
        };
        for row in &self.rows[skip..] {
            out.push_str(row);
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.summary());
        out.push('\n');
        print!("{out}");
        let _ = std::io::stdout().flush();
    }
}

/// `autorecover watch SOURCE` entry point.
pub fn watch(args: &Args, session: &Session) -> Result<(), String> {
    let source = args
        .positional(0)
        .ok_or("watch needs a source: http://host:port, host:port, or a --metrics-out file")?;
    let refresh: bool = args.flag_or("refresh", false)?;
    let follow: bool = args.flag_or("follow", false)?;
    let limit: usize = args.flag_or("limit", 0usize)?;
    let interval_secs: f64 = args.flag_or("interval", 0.5f64)?;
    if !(interval_secs > 0.0 && interval_secs.is_finite()) {
        return Err(format!("--interval must be > 0, got {interval_secs}"));
    }
    let interval = Duration::from_secs_f64(interval_secs);

    let mut state = WatchState::default();
    if !refresh {
        println!("{HEADER}");
    }
    let mut on_line = |state: &mut WatchState, line: &str| {
        let before = state.rows.len();
        if state.apply(line) {
            if refresh {
                state.redraw(limit);
            } else if state.rows.len() > before {
                println!("{}", state.rows[state.rows.len() - 1]);
            }
        }
    };

    let looks_like_network = source.starts_with("http://")
        || source
            .rsplit_once(':')
            .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
    if looks_like_network {
        watch_network(source, session, &mut state, &mut on_line)?;
    } else {
        watch_file(source, follow, interval, session, &mut state, &mut on_line)?;
    }
    if !refresh {
        println!("\n{}", state.summary());
    }
    Ok(())
}

/// Streams `/events` from a live `--metrics-listen` server until the
/// producing run finishes (bus closed) or the connection drops.
fn watch_network(
    source: &str,
    session: &Session,
    state: &mut WatchState,
    on_line: &mut dyn FnMut(&mut WatchState, &str),
) -> Result<(), String> {
    let addr = source.trim_start_matches("http://").trim_end_matches('/');
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    stream
        .write_all(format!("GET /events HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("requesting /events from {addr}: {e}"))?;
    session.info(&format!("watching http://{addr}/events ..."));
    let reader = BufReader::new(stream);
    let mut in_body = false;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if !in_body {
            // The NDJSON body starts at the first JSON object line.
            if line.starts_with("HTTP/1.1 503") {
                return Err(
                    "the observed process has no event bus (was it started with --metrics-listen?)"
                        .into(),
                );
            }
            if line.starts_with('{') {
                in_body = true;
            } else {
                continue;
            }
        }
        on_line(state, &line);
    }
    Ok(())
}

/// Renders a `--metrics-out` JSONL file, optionally tailing it until the
/// final snapshot line appears.
fn watch_file(
    source: &str,
    follow: bool,
    interval: Duration,
    session: &Session,
    state: &mut WatchState,
    on_line: &mut dyn FnMut(&mut WatchState, &str),
) -> Result<(), String> {
    session.info(&format!(
        "watching {source}{} ...",
        if follow { " (following)" } else { "" }
    ));
    let mut offset = 0usize;
    loop {
        let text = std::fs::read_to_string(source).map_err(|e| format!("reading {source}: {e}"))?;
        // Only complete lines past the last offset; a writer may be
        // mid-line at the tail.
        let complete = text.rfind('\n').map_or(0, |p| p + 1);
        if complete > offset {
            for line in text[offset..complete].lines() {
                on_line(state, line);
            }
            offset = complete;
        }
        if !follow || state.finished {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared `flatjson` parser (adversarially tested in
    /// `recovery_telemetry::flatjson`) drives the watcher: spot-check
    /// that the cases the old ad-hoc parser got wrong — escaped quotes
    /// and nested braces inside strings — now parse correctly here.
    #[test]
    fn parses_flat_event_lines_with_hostile_strings() {
        let fields = parse_event_line(
            "{\"type\":\"window\",\"window\":2,\"mttr_s\":93.5,\"learned_policy\":true,\"status\":\"a\\\"}{\\\"b\"}",
        )
        .expect("valid line");
        assert_eq!(get(&fields, "type").and_then(Field::as_str), Some("window"));
        assert_eq!(get(&fields, "window").and_then(Field::as_f64), Some(2.0));
        assert_eq!(
            get(&fields, "learned_policy").and_then(Field::as_bool),
            Some(true)
        );
        assert_eq!(
            get(&fields, "status").and_then(Field::as_str),
            Some("a\"}{\"b"),
            "escaped quotes and braces inside strings survive"
        );
        assert!(parse_event_line("not json").is_none());
        assert!(parse_event_line("").is_none());
        let nested = parse_event_line(
            "{\"type\":\"snapshot\",\"counters\":{\"a\":1,\"b\":{\"c\":[1,2]}},\"note\":\"q\\\"/\\u0041\\n\"}",
        )
        .expect("valid line");
        assert!(matches!(get(&nested, "counters"), Some(Field::Object)));
        assert_eq!(
            get(&nested, "note").and_then(Field::as_str),
            Some("q\"/A\n")
        );
    }

    #[test]
    fn serve_reload_events_surface_the_served_version() {
        let mut state = WatchState::default();
        assert!(state.summary().contains("windows: 0"));
        assert!(!state.summary().contains("serving:"));
        assert!(state.apply(
            "{\"type\":\"serve.reload\",\"version\":1,\"hash\":\"00ff\",\"source\":\"window:0\",\"entries\":12}",
        ));
        assert!(state.apply(
            "{\"type\":\"serve.reload\",\"version\":2,\"hash\":\"abcd\",\"source\":\"window:1\",\"entries\":14}",
        ));
        let summary = state.summary();
        assert!(
            summary.contains("serving: v2 (abcd), 2 reloads"),
            "{summary}"
        );
    }

    #[test]
    fn window_events_become_rows_and_summary() {
        let mut state = WatchState::default();
        assert!(state.apply(
            "{\"type\":\"window\",\"window\":0,\"processes\":120,\"mttr_s\":150.25,\"learned_policy\":false,\"policy_entries\":0,\"status\":\"trained\",\"fallbacks\":0}",
        ));
        assert!(state.apply(
            "{\"type\":\"window\",\"window\":1,\"processes\":118,\"mttr_s\":90.5,\"learned_policy\":true,\"policy_entries\":40,\"status\":\"empty_window\",\"fallbacks\":1}",
        ));
        assert!(state.apply(
            "{\"type\":\"training_finished\",\"error_type\":\"t1\",\"sweeps\":500,\"converged\":true}",
        ));
        assert!(state.apply(
            "{\"type\":\"training_finished\",\"error_type\":\"t2\",\"sweeps\":900,\"converged\":false}",
        ));
        assert!(state.apply("{\"type\":\"health\",\"ok\":true,\"phase\":\"running\"}"));
        assert!(!state.apply("{\"type\":\"span\",\"name\":\"retrain\",\"ms\":1.0}"));
        assert_eq!(state.rows.len(), 2);
        assert!(state.rows[0].contains("user"), "{}", state.rows[0]);
        assert!(state.rows[1].contains("learned"), "{}", state.rows[1]);
        assert!(state.rows[1].contains("empty_window"), "{}", state.rows[1]);
        let summary = state.summary();
        assert!(
            summary.contains("windows: 2 | fallbacks: 1 (50%)"),
            "{summary}"
        );
        assert!(summary.contains("converged types: 1/2"), "{summary}");
        assert!(summary.contains("phase: running"), "{summary}");
        assert!(!state.finished);
        assert!(state.apply("{\"type\":\"snapshot\",\"counters\":{}}"));
        assert!(state.finished);
    }

    #[test]
    fn convergence_events_fold_into_a_per_window_tally() {
        let mut state = WatchState::default();
        assert!(state.apply(
            "{\"type\":\"convergence\",\"window\":0,\"error_type\":\"type1\",\"verdict\":\"converged\",\"sweeps\":500,\"converged\":true,\"final_q_delta\":0.0125}",
        ));
        assert!(state.apply(
            "{\"type\":\"convergence\",\"window\":0,\"error_type\":\"type2\",\"verdict\":\"capped\",\"sweeps\":900,\"converged\":false,\"final_q_delta\":0.41}",
        ));
        let summary = state.summary();
        assert!(
            summary.contains("window 0 convergence: 1/2 (worst dq 0.4100)"),
            "{summary}"
        );
        // A new window resets the tally instead of mixing windows.
        assert!(state.apply(
            "{\"type\":\"convergence\",\"window\":1,\"error_type\":\"type1\",\"verdict\":\"converged\",\"sweeps\":420,\"converged\":true,\"final_q_delta\":0.009}",
        ));
        let summary = state.summary();
        assert!(
            summary.contains("window 1 convergence: 1/1 (worst dq 0.0090)"),
            "{summary}"
        );
    }

    #[test]
    fn access_events_accumulate_per_route_latencies() {
        let mut state = WatchState::default();
        assert!(state.apply(
            "{\"type\":\"access\",\"id\":\"req-1\",\"method\":\"POST\",\"path\":\"/advise\",\"route\":\"advise\",\"ms\":2.0}",
        ));
        assert!(state.apply(
            "{\"type\":\"access\",\"id\":\"req-2\",\"method\":\"POST\",\"path\":\"/advise\",\"route\":\"advise\",\"ms\":4.0}",
        ));
        assert!(state.apply(
            "{\"type\":\"access\",\"id\":\"req-3\",\"method\":\"GET\",\"path\":\"/healthz\",\"route\":\"healthz\",\"ms\":1.0}",
        ));
        // Malformed access events (no route) are ignored, not folded.
        assert!(!state.apply("{\"type\":\"access\",\"id\":\"req-4\",\"ms\":9.0}"));
        let summary = state.summary();
        assert!(
            summary.contains("routes: advise 2x 3.0ms | healthz 1x 1.0ms"),
            "{summary}"
        );
    }
}
