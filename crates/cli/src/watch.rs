//! `autorecover watch` — a live view of a running continuous loop.
//!
//! Consumes the telemetry event stream from either source:
//!
//! * **network**: an `/events` NDJSON stream from a process started with
//!   `--metrics-listen` (pass `http://host:port` or `host:port`);
//! * **file**: a `--metrics-out` JSONL file, optionally tailed with
//!   `--follow true` while the producing run is still going.
//!
//! Window summary events render as the same table `loop` prints, plus a
//! running summary line (fallback rate, converged/trained type counts,
//! loop phase). With `--refresh true` the screen is redrawn in place on
//! every update (a refreshing TTY dashboard); the default appends rows,
//! which is what CI logs and piped output want.
//!
//! The watcher is a pure consumer: it never writes to the observed
//! process, and a stalled watcher at worst drops events on the bus
//! (never blocking training).

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use crate::args::Args;
use crate::session::Session;

/// One parsed value from a flat telemetry event line.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Str(String),
    Num(f64),
    Bool(bool),
    /// `null`, or a nested object/array we skim over (snapshot lines).
    Other,
}

impl Field {
    fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Field::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Minimal parser for one flat JSON object line as produced by the
/// telemetry `Event` writer. Nested objects/arrays (the final snapshot
/// line) are balanced-skipped and reported as [`Field::Other`]. Returns
/// `None` for anything that doesn't look like a JSON object.
fn parse_event_line(line: &str) -> Option<Vec<(String, Field)>> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut i);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    loop {
        skip_ws(bytes, &mut i);
        match bytes.get(i)? {
            b'}' => return Some(fields),
            b',' => {
                i += 1;
                continue;
            }
            b'"' => {}
            _ => return None,
        }
        let key = parse_string(bytes, &mut i)?;
        skip_ws(bytes, &mut i);
        if bytes.get(i) != Some(&b':') {
            return None;
        }
        i += 1;
        skip_ws(bytes, &mut i);
        let value = parse_value(bytes, &mut i)?;
        fields.push((key, value));
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes.get(*i).is_some_and(u8::is_ascii_whitespace) {
        *i += 1;
    }
}

/// Parses a `"..."` string starting at `bytes[*i]`, decoding the escape
/// set the event writer emits (`\"`, `\\`, `\n`, `\r`, `\t`, `\uXXXX`).
fn parse_string(bytes: &[u8], i: &mut usize) -> Option<String> {
    if bytes.get(*i) != Some(&b'"') {
        return None;
    }
    *i += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*i)? {
            b'"' => {
                *i += 1;
                return Some(out);
            }
            b'\\' => {
                *i += 1;
                match bytes.get(*i)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*i + 1..*i + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *i += 4;
                    }
                    _ => return None,
                }
                *i += 1;
            }
            _ => {
                // Multi-byte UTF-8 passes through untouched.
                let start = *i;
                *i += 1;
                while *i < bytes.len() && bytes[*i] & 0xC0 == 0x80 {
                    *i += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*i]).ok()?);
            }
        }
    }
}

fn parse_value(bytes: &[u8], i: &mut usize) -> Option<Field> {
    match bytes.get(*i)? {
        b'"' => parse_string(bytes, i).map(Field::Str),
        b't' => {
            *i += 4;
            Some(Field::Bool(true))
        }
        b'f' => {
            *i += 5;
            Some(Field::Bool(false))
        }
        b'n' => {
            *i += 4;
            Some(Field::Other)
        }
        b'{' | b'[' => {
            skip_balanced(bytes, i)?;
            Some(Field::Other)
        }
        _ => {
            let start = *i;
            while bytes.get(*i).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                *i += 1;
            }
            std::str::from_utf8(&bytes[start..*i])
                .ok()?
                .parse()
                .ok()
                .map(Field::Num)
        }
    }
}

/// Skims a balanced `{...}` / `[...]` region (string-aware).
fn skip_balanced(bytes: &[u8], i: &mut usize) -> Option<()> {
    let mut depth = 0usize;
    loop {
        match bytes.get(*i)? {
            b'{' | b'[' => {
                depth += 1;
                *i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                *i += 1;
                if depth == 0 {
                    return Some(());
                }
            }
            b'"' => {
                parse_string(bytes, i)?;
            }
            _ => *i += 1,
        }
    }
}

fn get<'a>(fields: &'a [(String, Field)], key: &str) -> Option<&'a Field> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The accumulated view of one loop run, rebuilt event by event.
#[derive(Debug, Default)]
struct WatchState {
    /// Rendered window rows, in arrival order.
    rows: Vec<String>,
    windows: u64,
    fallbacks: u64,
    /// Error types that finished training / that converged.
    types_finished: BTreeSet<String>,
    types_converged: BTreeSet<String>,
    phase: String,
    /// Whether the producing run's final snapshot has been seen.
    finished: bool,
}

const HEADER: &str = "window  processes        mttr    policy    entries  status";

impl WatchState {
    /// Folds one event line in; returns true when the view changed.
    fn apply(&mut self, line: &str) -> bool {
        let Some(fields) = parse_event_line(line) else {
            return false;
        };
        let Some(kind) = get(&fields, "type").and_then(Field::as_str) else {
            return false;
        };
        match kind {
            "window" => {
                let num = |key: &str| get(&fields, key).and_then(Field::as_f64).unwrap_or(0.0);
                let status = get(&fields, "status")
                    .and_then(Field::as_str)
                    .unwrap_or("?")
                    .to_owned();
                let learned = matches!(get(&fields, "learned_policy"), Some(Field::Bool(true)));
                self.rows.push(format!(
                    "{:>6}  {:>9}  {:>9.1}s  {:>8}  {:>9}  {}",
                    num("window") as u64,
                    num("processes") as u64,
                    num("mttr_s"),
                    if learned { "learned" } else { "user" },
                    num("policy_entries") as u64,
                    status
                ));
                self.windows += 1;
                self.fallbacks = num("fallbacks") as u64;
                true
            }
            "training_finished" => {
                if let Some(t) = get(&fields, "error_type").and_then(Field::as_str) {
                    self.types_finished.insert(t.to_owned());
                    if matches!(get(&fields, "converged"), Some(Field::Bool(true))) {
                        self.types_converged.insert(t.to_owned());
                    }
                }
                true
            }
            "health" => {
                if let Some(phase) = get(&fields, "phase").and_then(Field::as_str) {
                    self.phase = phase.to_owned();
                }
                true
            }
            "snapshot" => {
                self.finished = true;
                true
            }
            _ => false,
        }
    }

    fn summary(&self) -> String {
        let rate = if self.windows > 0 {
            100.0 * self.fallbacks as f64 / self.windows as f64
        } else {
            0.0
        };
        let mut out = format!(
            "windows: {} | fallbacks: {} ({rate:.0}%) | converged types: {}/{}",
            self.windows,
            self.fallbacks,
            self.types_converged.len(),
            self.types_finished.len(),
        );
        if !self.phase.is_empty() {
            out.push_str(&format!(" | phase: {}", self.phase));
        }
        out
    }

    /// Redraws the whole table (refresh mode): clear screen, header,
    /// the last `limit` rows (0 = all), summary.
    fn redraw(&self, limit: usize) {
        let mut out = String::from("\x1b[2J\x1b[H");
        out.push_str(HEADER);
        out.push('\n');
        let skip = if limit > 0 && self.rows.len() > limit {
            self.rows.len() - limit
        } else {
            0
        };
        for row in &self.rows[skip..] {
            out.push_str(row);
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.summary());
        out.push('\n');
        print!("{out}");
        let _ = std::io::stdout().flush();
    }
}

/// `autorecover watch SOURCE` entry point.
pub fn watch(args: &Args, session: &Session) -> Result<(), String> {
    let source = args
        .positional(0)
        .ok_or("watch needs a source: http://host:port, host:port, or a --metrics-out file")?;
    let refresh: bool = args.flag_or("refresh", false)?;
    let follow: bool = args.flag_or("follow", false)?;
    let limit: usize = args.flag_or("limit", 0usize)?;
    let interval_secs: f64 = args.flag_or("interval", 0.5f64)?;
    if !(interval_secs > 0.0 && interval_secs.is_finite()) {
        return Err(format!("--interval must be > 0, got {interval_secs}"));
    }
    let interval = Duration::from_secs_f64(interval_secs);

    let mut state = WatchState::default();
    if !refresh {
        println!("{HEADER}");
    }
    let mut on_line = |state: &mut WatchState, line: &str| {
        let before = state.rows.len();
        if state.apply(line) {
            if refresh {
                state.redraw(limit);
            } else if state.rows.len() > before {
                println!("{}", state.rows[state.rows.len() - 1]);
            }
        }
    };

    let looks_like_network = source.starts_with("http://")
        || source
            .rsplit_once(':')
            .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
    if looks_like_network {
        watch_network(source, session, &mut state, &mut on_line)?;
    } else {
        watch_file(source, follow, interval, session, &mut state, &mut on_line)?;
    }
    if !refresh {
        println!("\n{}", state.summary());
    }
    Ok(())
}

/// Streams `/events` from a live `--metrics-listen` server until the
/// producing run finishes (bus closed) or the connection drops.
fn watch_network(
    source: &str,
    session: &Session,
    state: &mut WatchState,
    on_line: &mut dyn FnMut(&mut WatchState, &str),
) -> Result<(), String> {
    let addr = source.trim_start_matches("http://").trim_end_matches('/');
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    stream
        .write_all(format!("GET /events HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("requesting /events from {addr}: {e}"))?;
    session.info(&format!("watching http://{addr}/events ..."));
    let reader = BufReader::new(stream);
    let mut in_body = false;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if !in_body {
            // The NDJSON body starts at the first JSON object line.
            if line.starts_with("HTTP/1.1 503") {
                return Err(
                    "the observed process has no event bus (was it started with --metrics-listen?)"
                        .into(),
                );
            }
            if line.starts_with('{') {
                in_body = true;
            } else {
                continue;
            }
        }
        on_line(state, &line);
    }
    Ok(())
}

/// Renders a `--metrics-out` JSONL file, optionally tailing it until the
/// final snapshot line appears.
fn watch_file(
    source: &str,
    follow: bool,
    interval: Duration,
    session: &Session,
    state: &mut WatchState,
    on_line: &mut dyn FnMut(&mut WatchState, &str),
) -> Result<(), String> {
    session.info(&format!(
        "watching {source}{} ...",
        if follow { " (following)" } else { "" }
    ));
    let mut offset = 0usize;
    loop {
        let text = std::fs::read_to_string(source).map_err(|e| format!("reading {source}: {e}"))?;
        // Only complete lines past the last offset; a writer may be
        // mid-line at the tail.
        let complete = text.rfind('\n').map_or(0, |p| p + 1);
        if complete > offset {
            for line in text[offset..complete].lines() {
                on_line(state, line);
            }
            offset = complete;
        }
        if !follow || state.finished {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_event_lines() {
        let fields = parse_event_line(
            "{\"type\":\"window\",\"window\":2,\"mttr_s\":93.5,\"learned_policy\":true,\"status\":\"trained\"}",
        )
        .expect("valid line");
        assert_eq!(get(&fields, "type"), Some(&Field::Str("window".into())));
        assert_eq!(get(&fields, "window"), Some(&Field::Num(2.0)));
        assert_eq!(get(&fields, "mttr_s"), Some(&Field::Num(93.5)));
        assert_eq!(get(&fields, "learned_policy"), Some(&Field::Bool(true)));
        assert!(parse_event_line("not json").is_none());
        assert!(parse_event_line("").is_none());
    }

    #[test]
    fn parses_escapes_and_skips_nested_objects() {
        let fields = parse_event_line(
            "{\"type\":\"snapshot\",\"counters\":{\"a\":1,\"b\":{\"c\":[1,2]}},\"note\":\"q\\\"/\\u0041\\n\"}",
        )
        .expect("valid line");
        assert_eq!(get(&fields, "counters"), Some(&Field::Other));
        assert_eq!(get(&fields, "note"), Some(&Field::Str("q\"/A\n".into())));
    }

    #[test]
    fn window_events_become_rows_and_summary() {
        let mut state = WatchState::default();
        assert!(state.apply(
            "{\"type\":\"window\",\"window\":0,\"processes\":120,\"mttr_s\":150.25,\"learned_policy\":false,\"policy_entries\":0,\"status\":\"trained\",\"fallbacks\":0}",
        ));
        assert!(state.apply(
            "{\"type\":\"window\",\"window\":1,\"processes\":118,\"mttr_s\":90.5,\"learned_policy\":true,\"policy_entries\":40,\"status\":\"empty_window\",\"fallbacks\":1}",
        ));
        assert!(state.apply(
            "{\"type\":\"training_finished\",\"error_type\":\"t1\",\"sweeps\":500,\"converged\":true}",
        ));
        assert!(state.apply(
            "{\"type\":\"training_finished\",\"error_type\":\"t2\",\"sweeps\":900,\"converged\":false}",
        ));
        assert!(state.apply("{\"type\":\"health\",\"ok\":true,\"phase\":\"running\"}"));
        assert!(!state.apply("{\"type\":\"span\",\"name\":\"retrain\",\"ms\":1.0}"));
        assert_eq!(state.rows.len(), 2);
        assert!(state.rows[0].contains("user"), "{}", state.rows[0]);
        assert!(state.rows[1].contains("learned"), "{}", state.rows[1]);
        assert!(state.rows[1].contains("empty_window"), "{}", state.rows[1]);
        let summary = state.summary();
        assert!(
            summary.contains("windows: 2 | fallbacks: 1 (50%)"),
            "{summary}"
        );
        assert!(summary.contains("converged types: 1/2"), "{summary}");
        assert!(summary.contains("phase: running"), "{summary}");
        assert!(!state.finished);
        assert!(state.apply("{\"type\":\"snapshot\",\"counters\":{}}"));
        assert!(state.finished);
    }
}
