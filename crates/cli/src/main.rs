//! `autorecover` — the end-to-end command line for the workspace:
//! generate a synthetic cluster recovery log, inspect and mine it, train
//! a recovery policy offline, evaluate it against the log, and simulate a
//! cluster running the learned policy live.

mod args;
mod commands;
mod session;
mod watch;

use std::process::ExitCode;

const USAGE: &str = "\
autorecover — offline RL generation of error-recovery policies
(reproduction of Zhu & Yuan, \"A Reinforcement Learning Approach to
Automatic Error Recovery\", DSN 2007)

USAGE:
  autorecover <command> [args]

COMMANDS:
  generate --out LOG [--scale F] [--seed N]
      Simulate a cluster under the production cheapest-first policy and
      write the recovery log in the textual <time, machine, description>
      format. --scale 1 is 2,000 machines over ~6 months.

  inspect LOG [--top N]
      Log statistics: entries, recovery processes, the error-type
      frequency ranking, and per-type downtime (paper Figures 5/6).

  mine LOG [--minp F]
      m-pattern analysis: the symptom-cohesion curve (paper Figure 3),
      the mined symptom clusters, and the noise-filter verdict.

  train LOG --out POLICY [--fraction F] [--method standard|tree|faithful]
            [--minp F] [--top N] [--threads N]
      Train a recovery policy on the first F of the log (by time) and
      write it as a readable policy file.

  evaluate LOG --policy POLICY [--fraction F] [--hybrid true|false]
               [--threads N]
      Replay a trained policy against the held-out tail of the log and
      report per-type relative cost and coverage (paper Figures 8-12).

  simulate POLICY [--scale F] [--seed N] [--baseline true|false]
      Run a *live* cluster simulation controlled by the trained policy
      (with user-policy fallback) and compare MTTR against the
      production policy on an identical fault sequence. --seed must
      match the seed of the log the policy was trained on (it selects
      the fault catalog).

  report LOG [--method standard|tree] [--threads N] [--fast true]
             [--diagnostics-out DIR]
      The full paper evaluation on one log: all four train/test splits,
      totals, and coverage (paper Figures 8-12 in one table).
      --diagnostics-out writes one deterministic run report per split
      (JSON + Markdown + HTML): convergence traces, policy decisions
      with confidence flags, and the evaluation summary. --fast true
      swaps in the quick trainer preset (for CI and smoke runs).

  explain POLICY [--min-visits K] [--tie F] [--json true]
      Per-state action rankings of a trained policy file: learned costs,
      the winner's margin, near-ties (runner-up within fraction F), and
      decisions backed by fewer than K Eq. 6 updates.

  diff-policy OLD NEW [--json true]
      Structured diff between two policy files: states added/removed and
      states whose chosen action flipped, with both costs.

  loop [--windows N] [--scale F] [--seed N] [--policy-out POLICY]
       [--fault-empty W,..] [--fault-sim-panic W,..]
       [--fault-retrain-panic W,..] [--fault-blackout W,..]
      The paper's Figure 1 as a running system: alternate observation
      windows and retraining on the accumulated log, reporting the
      realized MTTR per window plus pool/fallback counters.
      --policy-out writes the final retrained policy as a policy file.
      The --fault-* flags inject scripted faults into the listed 0-based
      windows (empty observation window, simulation panic, retraining
      panic, noise-filter blackout) to exercise the degraded paths.

  serve [--listen ADDR] [--serve-for SECS] [--max-inflight N]
        [--policy POLICY [--log LOG]]
        [loop flags: --windows/--scale/--seed/--policy-out/--fault-*]
      Serve a recovery policy over HTTP: POST /advise (ranked actions
      for a symptom state), POST /simulate (what-if replay of an action
      sequence), GET /policy and /policy/text (version, hash, canonical
      text), plus the shared telemetry routes (/metrics, /snapshot,
      /healthz, /events, /traces, /trace/<id>, /convergence). Every
      response carries an X-Request-Id resolvable at /trace/req-<id>,
      and per-route latency lands in serve.route.<route>.ms. With
      --policy it pins that policy file (add --log to enable /simulate
      replay against the training corpus); without it, it runs the
      continuous loop beside the daemon and hot-swaps a new immutable
      snapshot after every successfully retrained window — a degraded
      window keeps the last-good policy serving. Every answer carries
      the policy version and hash. Connections beyond --max-inflight
      (default 64) are shed with a typed 503. --listen defaults to an
      ephemeral localhost port; --serve-for bounds the daemon's
      lifetime (absent = serve until killed).

  watch SOURCE [--refresh true] [--follow true] [--limit N]
               [--interval SECS]
      Live view of a continuous loop. SOURCE is either http://host:port
      (or host:port) of a run started with --metrics-listen — streams
      its /events NDJSON — or a --metrics-out JSONL file (--follow true
      tails it until the run's final snapshot). Renders the loop's
      window table plus fallback rate and convergence counts, folds
      live convergence events into a per-window verdict line, and
      accumulates serving access events into per-route mean latencies;
      --refresh true redraws the screen in place on every update.

GLOBAL FLAGS (accepted by every command):
  --threads N           Worker threads for per-type training and test-set
                        replay (train/evaluate/report). Defaults to the
                        machine's available parallelism; 1 is the legacy
                        sequential path. Trained policies are
                        byte-identical for every thread count.
  --on-parse-error MODE How log-reading commands (inspect/mine/train/
                        evaluate/report) react to a malformed log line:
                        fail (default; stop at the first error), skip
                        (drop malformed lines, counting them per kind),
                        or quarantine (skip + retain the first 64
                        offending lines for inspection). Surviving
                        entries and all quarantine counters are
                        byte-identical for every --threads value.
  --metrics-out FILE    Write telemetry as JSON lines: per-stage span
                        timings, training progress events, and a final
                        metrics snapshot (counters/gauges/histograms).
  --metrics-listen ADDR Serve live observability over HTTP while the
                        command runs (port 0 picks an ephemeral port):
                        /metrics (Prometheus text), /snapshot (JSON
                        metrics), /healthz (loop status), /events
                        (NDJSON event stream), /traces and /trace/<id>
                        (finished span trees; append /profile for a
                        flamegraph-style text rendering), /convergence
                        (NDJSON stream of per-window retraining
                        summaries; /convergence/sse frames it as SSE).
                        Purely observational: outputs are byte-identical
                        with or without it.
  --serve-linger SECS   Keep the --metrics-listen server up this long
                        after the command finishes, so scrapers can
                        collect the final state of short runs.
  --log-format FORMAT   Progress-line format on stderr: text (default)
                        or json (one JSON object per line).
  -v, -vv               Increase verbosity: show per-type diagnostics.

Run `autorecover <command> --help` for nothing extra — commands are fully
described above.";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let parsed = match args::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = match session::Session::from_args(&parsed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => commands::generate(&parsed, &session),
        "inspect" => commands::inspect(&parsed, &session),
        "mine" => commands::mine(&parsed, &session),
        "train" => commands::train(&parsed, &session),
        "evaluate" => commands::evaluate(&parsed, &session),
        "simulate" => commands::simulate(&parsed, &session),
        "report" => commands::report(&parsed, &session),
        "explain" => commands::explain(&parsed, &session),
        "diff-policy" => commands::diff_policy(&parsed, &session),
        "loop" => commands::continuous_loop(&parsed, &session),
        "serve" => commands::serve(&parsed, &session),
        "watch" => watch::watch(&parsed, &session),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; run `autorecover help`")),
    };
    session.finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
