//! Implementations of the `autorecover` subcommands.

use std::cell::RefCell;
use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use recovery_core::error_type::NoiseFilter;
use recovery_core::evaluate::{evaluate_parallel, time_ordered_split};
use recovery_core::experiment::{fig3_cohesion_curve, ExperimentContext, TestRun, TestRunConfig};
use recovery_core::fault::LoopFaultPlan;
use recovery_core::ingest::{self, ParseErrorPolicy};
use recovery_core::parallel::WorkerPool;
use recovery_core::persist::{policy_from_text, policy_to_text};
use recovery_core::pipeline::{
    run_continuous_loop_instrumented, ContinuousLoopConfig, LoopRun, WindowPublication,
};
use recovery_core::platform::{CostEstimation, SimulationPlatform};
use recovery_core::policy::{HybridPolicy, LivePolicy, TrainedPolicy, UserStatePolicy};
use recovery_core::selection_tree::{SelectionTreeConfig, SelectionTreeTrainer};
use recovery_core::trainer::{OfflineTrainer, TrainerConfig};
use recovery_diagnostics::{
    assemble, diff_policies, explain_policy, DiagnosticsRecorder, ExplainOptions, RunReportInputs,
};
use recovery_mpattern::MPatternMiner;
use recovery_serve::{publish_snapshot, PolicySnapshot, PolicyStore, ServeConfig, ServeDaemon};
use recovery_simlog::{
    availability, stats, ClusterSim, FaultCatalog, GeneratorConfig, LogGenerator, RecoveryLog,
    SymptomCatalog, UserDefinedPolicy,
};
use recovery_telemetry::{Event, EventBus, ObserverHandle, Telemetry};

use crate::args::Args;
use crate::session::Session;

/// `autorecover generate` — simulate and write a recovery log.
pub fn generate(args: &Args, session: &Session) -> Result<(), String> {
    let out = args.flag("out").ok_or("generate needs --out <file>")?;
    let scale: f64 = args.flag_or("scale", 0.05)?;
    if scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    let seed: u64 = args.flag_or("seed", 0x2007_D50Au64)?;
    session.info(&format!(
        "generating synthetic cluster log (scale {scale}, seed {seed}) ..."
    ));
    let config = GeneratorConfig::paper_scale(scale).with_seed(seed);
    let mut generated = {
        let _span = session.telemetry.span("generate");
        LogGenerator::new(config).generate()
    };
    let text = generated.log.to_text();
    fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    let processes = generated.log.split_processes();
    println!(
        "wrote {out}: {} entries, {} complete recovery processes, {} distinct symptoms",
        generated.log.len(),
        processes.len(),
        generated.log.symptoms().len()
    );
    Ok(())
}

/// Parses `--on-parse-error`: absent means the strict `fail` policy.
fn parse_error_policy(args: &Args) -> Result<ParseErrorPolicy, String> {
    match args.flag("on-parse-error") {
        None => Ok(ParseErrorPolicy::Fail),
        Some(v) => v
            .parse()
            .map_err(|e: String| format!("--on-parse-error: {e}")),
    }
}

/// Reads and parses the positional log argument with the sharded ingestion
/// pipeline, honoring `--threads` and `--on-parse-error`. Returns the pool
/// next to the log so the caller can shard process extraction through the
/// same workers.
fn load_log(args: &Args, session: &Session) -> Result<(RecoveryLog, WorkerPool), String> {
    let pool = WorkerPool::new(parse_threads(args)?);
    let policy = parse_error_policy(args)?;
    let path = args.positional(0).ok_or("expected a log file argument")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let (log, quarantine) = ingest::parse_log_with_policy(&text, policy, &pool, &session.telemetry)
        .map_err(|e| format!("parsing {path}: {e}"))?;
    if !quarantine.is_clean() {
        session.info(&format!(
            "{path}: skipped {} malformed line(s) under --on-parse-error {policy} ({} quarantined, {} dropped past the buffer)",
            quarantine.skipped(),
            quarantine.lines().len(),
            quarantine.dropped()
        ));
        for line in quarantine.lines().iter().take(5) {
            session.debug(&format!(
                "quarantined line {} [{}]: {}",
                line.line,
                line.kind.label(),
                line.text
            ));
        }
    }
    session.debug(&format!(
        "parsed {path}: {} entries ({} threads)",
        log.len(),
        pool.threads()
    ));
    Ok((log, pool))
}

/// `autorecover inspect` — log statistics and the type ranking.
pub fn inspect(args: &Args, session: &Session) -> Result<(), String> {
    let (mut log, pool) = load_log(args, session)?;
    let top: usize = args.flag_or("top", 20usize)?;
    let audit = log.audit();
    let processes = ingest::split_processes(&mut log, &pool, &session.telemetry);
    let span = log.time_span();
    println!("entries:   {}", log.len());
    println!("symptoms:  {} distinct descriptions", log.symptoms().len());
    println!("processes: {} complete recoveries", processes.len());
    if let Some((a, b)) = span {
        println!("span:      {a} .. {b}");
    }
    if !audit.is_clean() {
        println!(
            "audit:     {} stray actions, {} stray successes, {} unfinished processes (dropped)",
            audit.stray_actions, audit.stray_successes, audit.unfinished_processes
        );
    }
    println!("MTTR:      {}", stats::mttr(&processes));
    println!("downtime:  {}", stats::total_downtime(&processes));
    if let Some((a, b)) = span {
        let report = availability(&processes, a, b);
        println!(
            "depend.:   availability {:.5} ({} nines), MTBF {} across {} machines",
            report.availability,
            report.nines(),
            report.mtbf,
            report.machines
        );
    }
    println!();
    println!(
        "{:>4}  {:>7}  {:>12}  {:>10}  error type (initial symptom)",
        "rank", "count", "downtime_s", "mttr"
    );
    for (i, s) in stats::by_initial_symptom(&processes)
        .iter()
        .take(top)
        .enumerate()
    {
        println!(
            "{:>4}  {:>7}  {:>12}  {:>10}  {}",
            i + 1,
            s.count,
            s.total_downtime.as_secs(),
            s.mttr().to_string(),
            log.symptoms().name(s.symptom).unwrap_or("?")
        );
    }
    Ok(())
}

/// `autorecover mine` — m-pattern cohesion analysis and clusters.
pub fn mine(args: &Args, session: &Session) -> Result<(), String> {
    let (mut log, pool) = load_log(args, session)?;
    let minp: f64 = args.flag_or("minp", 0.1f64)?;
    if !(minp > 0.0 && minp <= 1.0) {
        return Err("--minp must be in (0, 1]".into());
    }
    let processes = ingest::split_processes(&mut log, &pool, &session.telemetry);
    let _span = session.telemetry.span("mine");
    println!("symptom cohesion (fraction of processes with one mutually dependent set):");
    for (m, f) in fig3_cohesion_curve(&processes) {
        println!("  minp {m:.1}: {f:.4}");
    }
    let db = NoiseFilter::transaction_db(&processes);
    let clusters = MPatternMiner::new(minp).clusters(&db);
    println!("\n{} symptom clusters at minp {minp}:", clusters.len());
    for (i, cluster) in clusters.iter().enumerate().take(50) {
        let names: Vec<&str> = cluster
            .iter()
            .map(|&s| log.symptoms().name(s).unwrap_or("?"))
            .collect();
        println!("  {:>3}: {}", i + 1, names.join(", "));
    }
    if clusters.len() > 50 {
        println!("  ... and {} more", clusters.len() - 50);
    }
    let outcome = NoiseFilter::new(minp).partition(processes);
    println!(
        "\nnoise filter: kept {:.2}% ({} clean, {} noisy)",
        100.0 * outcome.kept_fraction(),
        outcome.clean.len(),
        outcome.noisy.len()
    );
    Ok(())
}

fn check_fraction(fraction: f64) -> Result<(), String> {
    if fraction > 0.0 && fraction < 1.0 {
        Ok(())
    } else {
        Err(format!(
            "--fraction must be strictly between 0 and 1, got {fraction}"
        ))
    }
}

/// Parses `--threads`: absent means the machine's available parallelism,
/// `1` forces the legacy sequential path, `0` is rejected. Trained
/// policies are byte-identical for every accepted value.
fn parse_threads(args: &Args) -> Result<usize, String> {
    match args.flag("threads") {
        None => Ok(WorkerPool::available().threads()),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err("--threads must be at least 1 (use 1 for the sequential path)".into()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("--threads: cannot parse {v:?}")),
        },
    }
}

/// Parses the shared fault-injection flags (`--fault-empty`,
/// `--fault-sim-panic`, `--fault-retrain-panic`, `--fault-blackout`):
/// each is a comma-separated list of 0-based window indices. Shared by
/// `loop` and `serve` so a faulted serving run can be reproduced
/// byte-for-byte by an unobserved `loop` with the same flags.
fn parse_fault_plan(args: &Args) -> Result<LoopFaultPlan, String> {
    fn windows(args: &Args, flag: &str) -> Result<Vec<usize>, String> {
        match args.flag(flag) {
            None => Ok(Vec::new()),
            Some(list) => list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| format!("--{flag}: cannot parse window index {s:?}"))
                })
                .collect(),
        }
    }
    let mut plan = LoopFaultPlan::none();
    for w in windows(args, "fault-empty")? {
        plan = plan.with_empty_window(w);
    }
    for w in windows(args, "fault-sim-panic")? {
        plan = plan.with_simulation_panic(w);
    }
    for w in windows(args, "fault-retrain-panic")? {
        plan = plan.with_retrain_panic(w);
    }
    for w in windows(args, "fault-blackout")? {
        plan = plan.with_filter_blackout(w);
    }
    Ok(plan)
}

fn trainer_config(method: &str) -> Result<TrainerConfig, String> {
    match method {
        "standard" | "tree" => Ok(TrainerConfig::default()),
        "faithful" => Ok(TrainerConfig::paper_faithful()),
        other => Err(format!(
            "unknown --method {other:?} (standard, tree, faithful)"
        )),
    }
}

/// `autorecover train` — offline policy generation.
pub fn train(args: &Args, session: &Session) -> Result<(), String> {
    let out = args.flag("out").ok_or("train needs --out <policy file>")?;
    let (mut log, pool) = load_log(args, session)?;
    let fraction: f64 = args.flag_or("fraction", 0.4f64)?;
    check_fraction(fraction)?;
    let minp: f64 = args.flag_or("minp", 0.1f64)?;
    let top_k: usize = args.flag_or("top", 40usize)?;
    let threads = pool.threads();
    let method = args.flag("method").unwrap_or("standard").to_owned();

    let ctx = {
        let _span = session.telemetry.span("prepare");
        ExperimentContext::prepare_from_log(&mut log, minp, top_k, &pool, &session.telemetry)
    };
    let (train_set, _) = time_ordered_split(&ctx.clean, fraction);
    session.info(&format!(
        "training on {} processes ({} error types, method {method}, {threads} threads) ...",
        train_set.len(),
        ctx.types.len()
    ));
    let config = trainer_config(&method)?;
    session.debug(&format!("trainer config: {config}"));
    if session.telemetry.is_enabled() {
        session.telemetry.emit(&config.to_event());
    }
    let trainer = {
        let _span = session.telemetry.span("platform_build");
        OfflineTrainer::new(train_set, config)
            .with_observer(session.telemetry.observer_handle())
            .with_threads(threads)
    };
    let (policy, train_stats) = {
        let _span = session.telemetry.span("train");
        if method == "tree" {
            SelectionTreeTrainer::new(&trainer, SelectionTreeConfig::default()).train(&ctx.types)
        } else {
            trainer.train(&ctx.types)
        }
    };
    for s in &train_stats {
        session.debug(&format!(
            "type rank {:?}: {} samples, {} sweeps, converged={}",
            s.error_type, s.sample_count, s.sweeps, s.converged
        ));
    }
    let total_sweeps: u64 = train_stats.iter().map(|s| s.sweeps).sum();
    let converged = train_stats.iter().filter(|s| s.converged).count();
    let text = policy_to_text(&policy, log.symptoms());
    fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} state-action entries for {} types ({total_sweeps} sweeps, {converged}/{} converged)",
        policy.q().len(),
        train_stats.len(),
        train_stats.len()
    );
    Ok(())
}

/// `autorecover evaluate` — replay a policy against the held-out log.
pub fn evaluate(args: &Args, session: &Session) -> Result<(), String> {
    let policy_path = args
        .flag("policy")
        .ok_or("evaluate needs --policy <file>")?;
    let (mut log, pool) = load_log(args, session)?;
    let fraction: f64 = args.flag_or("fraction", 0.4f64)?;
    check_fraction(fraction)?;
    let hybrid: bool = args.flag_or("hybrid", true)?;
    let minp: f64 = args.flag_or("minp", 0.1f64)?;
    let top_k: usize = args.flag_or("top", 40usize)?;

    let policy_text =
        fs::read_to_string(policy_path).map_err(|e| format!("reading {policy_path}: {e}"))?;
    // Intern against the log's catalog so names resolve to the same ids.
    let trained = {
        let symptoms = log.symptoms_mut();
        policy_from_text(&policy_text, symptoms).map_err(|e| e.to_string())?
    };

    let ctx = {
        let _span = session.telemetry.span("prepare");
        ExperimentContext::prepare_from_log(&mut log, minp, top_k, &pool, &session.telemetry)
    };
    let (train_set, test_set) = time_ordered_split(&ctx.clean, fraction);
    let platform = SimulationPlatform::from_processes(train_set, CostEstimation::AverageOnly)
        .with_observer(session.telemetry.observer_handle());

    let _span = session.telemetry.span("evaluate");
    let report = if hybrid {
        let policy = HybridPolicy::new(trained, UserStatePolicy::default());
        evaluate_parallel(&policy, &platform, test_set, &ctx.types, 20, &pool)
    } else {
        evaluate_parallel(&trained, &platform, test_set, &ctx.types, 20, &pool)
    };
    println!(
        "policy: {} | test processes: {} | training fraction {fraction}",
        report.policy_name,
        test_set.len()
    );
    println!(
        "{:>4}  {:>5}  {:>8}  {:>8}  error type",
        "rank", "n", "relative", "coverage"
    );
    for t in &report.per_type {
        println!(
            "{:>4}  {:>5}  {:>8.3}  {:>8.3}  {}",
            t.rank + 1,
            t.processes,
            t.relative_cost(),
            t.coverage(),
            log.symptoms().name(t.error_type.symptom()).unwrap_or("?")
        );
    }
    println!(
        "\noverall: relative cost {:.4} ({:.2}% of the user policy's downtime), coverage {:.4}",
        report.overall_relative_cost(),
        100.0 * report.overall_relative_cost(),
        report.overall_coverage()
    );
    Ok(())
}

/// `autorecover simulate` — run a live cluster under the trained policy.
pub fn simulate(args: &Args, session: &Session) -> Result<(), String> {
    let policy_path = args
        .positional(0)
        .ok_or("expected a policy file argument")?;
    let scale: f64 = args.flag_or("scale", 0.02f64)?;
    // The seed selects the *fault catalog*: pass the same --seed that
    // generated the training log, or the policy's symptom names will
    // resolve to a different fault population.
    let seed: u64 = args.flag_or("seed", 0x2007_D50Au64)?;
    let baseline: bool = args.flag_or("baseline", true)?;

    let policy_text =
        fs::read_to_string(policy_path).map_err(|e| format!("reading {policy_path}: {e}"))?;

    // The live cluster shares the catalog of the generator preset, so the
    // policy's symptom names resolve against the same fault population.
    let config = GeneratorConfig::paper_scale(scale).with_seed(seed);
    let catalog_seed = config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0CA7_A106;
    let catalog = config.catalog.generate(catalog_seed);
    let mut symptoms = catalog.symptoms().clone();
    let trained = policy_from_text(&policy_text, &mut symptoms).map_err(|e| e.to_string())?;

    let cluster = config.cluster.clone();

    let live = LivePolicy::new(HybridPolicy::new(trained, UserStatePolicy::default()));
    session.info(&format!(
        "simulating {} machines under the trained policy ...",
        cluster.machines
    ));
    let (mut log, _) = {
        let _span = session.telemetry.span("simulate_trained");
        ClusterSim::new(&catalog, live, cluster.clone(), seed ^ 0x11).run()
    };
    let procs = log.split_processes();
    let trained_mttr = stats::mttr(&procs);
    println!(
        "trained policy: {} processes, MTTR {} ({} s)",
        procs.len(),
        trained_mttr,
        trained_mttr.as_secs()
    );

    if baseline {
        session.info("simulating the same cluster under the user-defined policy ...");
        let _span = session.telemetry.span("simulate_baseline");
        let (mut base_log, _) =
            ClusterSim::new(&catalog, UserDefinedPolicy::default(), cluster, seed ^ 0x11).run();
        let base = base_log.split_processes();
        let base_mttr = stats::mttr(&base);
        println!(
            "user policy:    {} processes, MTTR {} ({} s)",
            base.len(),
            base_mttr,
            base_mttr.as_secs()
        );
        if base_mttr.as_secs() > 0 {
            println!(
                "MTTR ratio trained/user: {:.4}",
                trained_mttr.as_secs_f64() / base_mttr.as_secs_f64()
            );
        }
    }
    Ok(())
}

/// `autorecover report` — the full four-split paper evaluation.
pub fn report(args: &Args, session: &Session) -> Result<(), String> {
    let (mut log, pool) = load_log(args, session)?;
    let method = args.flag("method").unwrap_or("standard").to_owned();
    let minp: f64 = args.flag_or("minp", 0.1f64)?;
    let top_k: usize = args.flag_or("top", 40usize)?;
    let threads = pool.threads();
    let fast: bool = args.flag_or("fast", false)?;
    let diagnostics_out = args.flag("diagnostics-out").map(str::to_owned);
    if let Some(dir) = &diagnostics_out {
        fs::create_dir_all(dir).map_err(|e| format!("--diagnostics-out {dir}: {e}"))?;
    }
    let ctx = {
        let _span = session.telemetry.span("prepare");
        ExperimentContext::prepare_from_log(&mut log, minp, top_k, &pool, &session.telemetry)
    };
    println!(
        "clean processes: {} ({} filtered as noisy); {} types selected",
        ctx.clean.len(),
        ctx.noisy_count,
        ctx.types.len()
    );
    println!(
        "{:>5}  {:>8}  {:>12}  {:>12}  {:>9}  {:>8}",
        "test", "fraction", "trained/user", "hybrid/user", "coverage", "sweeps"
    );
    for (i, fraction) in [0.2, 0.4, 0.6, 0.8].into_iter().enumerate() {
        let trainer = if fast {
            TrainerConfig::fast()
        } else {
            trainer_config(&method)?
        };
        let config = TestRunConfig {
            minp,
            top_k,
            threads,
            ..TestRunConfig::new(fraction)
        }
        .with_trainer(trainer);
        session.info(&format!("training at fraction {fraction} ..."));
        let recorder = diagnostics_out.as_ref().map(|_| DiagnosticsRecorder::new());
        let extra = recorder
            .as_ref()
            .map_or_else(recovery_telemetry::ObserverHandle::none, |r| r.handle());
        let (run, policy) = {
            let _span = session.telemetry.span("test_run");
            TestRun::execute_in_context_instrumented(&config, &ctx, &session.telemetry, &extra)
        };
        if let (Some(dir), Some(recorder)) = (&diagnostics_out, &recorder) {
            write_diagnostics(
                dir,
                &config,
                &run,
                &policy,
                log.symptoms(),
                recorder,
                session,
            )?;
        }
        let trained = run.trained_report.overall_relative_cost();
        let hybrid = run.hybrid_report.overall_relative_cost();
        let sweeps: u64 = run.stats.iter().map(|s| s.sweeps).sum();
        println!(
            "{:>5}  {:>8.1}  {:>11.2}%  {:>11.2}%  {:>9.4}  {:>8}",
            i + 1,
            fraction,
            100.0 * trained,
            100.0 * hybrid,
            run.trained_report.overall_coverage(),
            sweeps
        );
    }
    Ok(())
}

/// Writes one training fraction's diagnostics bundle: the versioned run
/// report as JSON plus Markdown and HTML renderings. File names carry the
/// fraction (`run-report-f40.*` for 0.4) so the four splits coexist.
fn write_diagnostics(
    dir: &str,
    config: &TestRunConfig,
    run: &TestRun,
    policy: &TrainedPolicy,
    symptoms: &SymptomCatalog,
    recorder: &DiagnosticsRecorder,
    session: &Session,
) -> Result<(), String> {
    // Gauges and histograms carry wall-clock data; only the exact
    // counter sums keep the report deterministic, so only they embed.
    let counters = session.telemetry.snapshot().map(|s| s.counters);
    let report = assemble(&RunReportInputs {
        config: &config.trainer,
        train_fraction: config.train_fraction,
        stats: &run.stats,
        policy,
        symptoms,
        recorder,
        trained: &run.trained_report,
        hybrid: &run.hybrid_report,
        user: &run.user_report,
        counters: counters.as_ref(),
    });
    let stem = format!(
        "run-report-f{:02}",
        (config.train_fraction * 100.0).round() as u32
    );
    for (ext, content) in [
        ("json", report.to_json()),
        ("md", report.to_markdown()),
        ("html", report.to_html()),
    ] {
        let path = Path::new(dir).join(format!("{stem}.{ext}"));
        fs::write(&path, content).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    session.info(&format!("wrote {dir}/{stem}.{{json,md,html}}"));
    Ok(())
}

/// `autorecover explain` — per-state action rankings of a policy file,
/// with near-tie and low-visit confidence flags.
pub fn explain(args: &Args, session: &Session) -> Result<(), String> {
    let policy_path = args
        .positional(0)
        .ok_or("expected a policy file argument")?;
    let options = ExplainOptions {
        min_visits: args.flag_or("min-visits", ExplainOptions::default().min_visits)?,
        near_tie_fraction: args.flag_or("tie", ExplainOptions::default().near_tie_fraction)?,
    };
    let json: bool = args.flag_or("json", false)?;
    let text =
        fs::read_to_string(policy_path).map_err(|e| format!("reading {policy_path}: {e}"))?;
    let mut symptoms = SymptomCatalog::default();
    let trained: TrainedPolicy =
        policy_from_text(&text, &mut symptoms).map_err(|e| e.to_string())?;
    session.debug(&format!(
        "loaded {policy_path}: {} state-action entries",
        trained.q().len()
    ));
    let explanation = explain_policy(&trained, &symptoms, options);
    if json {
        println!("{}", explanation.to_json().render());
    } else {
        print!("{}", explanation.to_text());
    }
    Ok(())
}

/// `autorecover diff-policy` — structured comparison of two policy files:
/// states added/removed and decisions flipped.
pub fn diff_policy(args: &Args, session: &Session) -> Result<(), String> {
    let old_path = args
        .positional(0)
        .ok_or("expected OLD and NEW policy file arguments")?;
    let new_path = args
        .positional(1)
        .ok_or("expected OLD and NEW policy file arguments")?;
    let json: bool = args.flag_or("json", false)?;
    // One shared catalog so identical symptom names in both files resolve
    // to the same ids and states line up.
    let mut symptoms = SymptomCatalog::default();
    let old_text = fs::read_to_string(old_path).map_err(|e| format!("reading {old_path}: {e}"))?;
    let old = policy_from_text(&old_text, &mut symptoms).map_err(|e| e.to_string())?;
    let new_text = fs::read_to_string(new_path).map_err(|e| format!("reading {new_path}: {e}"))?;
    let new = policy_from_text(&new_text, &mut symptoms).map_err(|e| e.to_string())?;
    session.debug(&format!(
        "comparing {} old vs {} new entries",
        old.q().len(),
        new.q().len()
    ));
    let diff = diff_policies(&old, &new, &symptoms);
    if json {
        println!("{}", diff.to_json().render());
    } else {
        print!("{}", diff.to_text());
    }
    Ok(())
}

/// Streams one `convergence` event per error type from a finished
/// window's [`DiagnosticsRecorder`]. Every field is wall-clock-free and
/// thread-count invariant (sweep counts, Q-delta tails, exact episode
/// tallies), and `traces()` hands the types back in `BTreeMap` label
/// order, so the convergence stream is byte-identical across `--threads`
/// values — the same contract the `window` events honor.
fn emit_convergence_events(
    telemetry: &Telemetry,
    window: usize,
    recorder: &recovery_diagnostics::DiagnosticsRecorder,
) {
    for (label, traces) in recorder.traces() {
        for trace in &traces {
            telemetry.emit(
                &Event::new("convergence")
                    .with("window", window as u64)
                    .with("error_type", label.as_str())
                    .with("verdict", trace.verdict())
                    .with("sweeps", trace.sweeps)
                    .with("converged", trace.converged)
                    .with("final_q_delta", trace.final_q_delta)
                    .with("last_calm_sweeps", trace.last_calm_sweeps)
                    .with("episodes", trace.episode_costs.episodes)
                    .with("episode_steps", trace.episode_steps)
                    .with("max_episode_steps", trace.max_episode_steps)
                    .with("processes", trace.processes)
                    .with("replay_attempts", trace.replay_attempts)
                    .with("replay_cured", trace.replay_cured)
                    .with("replay_from_log", trace.replay_from_log),
            );
        }
    }
}

/// Shared driver for `loop` and `serve`: runs the instrumented
/// continuous loop, attaching a fresh [`DiagnosticsRecorder`] to each
/// window's retraining step so its convergence traces stream to the bus
/// as the window publishes (live `/convergence` fodder). Recording is
/// purely observational — policies and window outcomes are
/// byte-identical to an unobserved run, and the recorder is skipped
/// entirely when telemetry is disabled.
fn run_loop_with_convergence(
    catalog: &FaultCatalog,
    config: &ContinuousLoopConfig,
    telemetry: &Telemetry,
    publish: &mut dyn FnMut(WindowPublication<'_>),
) -> LoopRun {
    let slot: RefCell<Option<Arc<DiagnosticsRecorder>>> = RefCell::new(None);
    let mut window_observer = |_window: usize| {
        if !telemetry.is_enabled() {
            return ObserverHandle::none();
        }
        let recorder = DiagnosticsRecorder::new();
        let handle = recorder.handle();
        *slot.borrow_mut() = Some(recorder);
        handle
    };
    let mut publish_inner = |publication: WindowPublication<'_>| {
        if let Some(recorder) = slot.borrow_mut().take() {
            emit_convergence_events(telemetry, publication.window, &recorder);
        }
        publish(publication);
    };
    run_continuous_loop_instrumented(
        catalog,
        config,
        telemetry,
        &mut window_observer,
        &mut publish_inner,
    )
}

/// `autorecover loop` — the paper's Figure 1 as a running system:
/// alternate observation windows and retraining, reporting the realized
/// MTTR per window.
pub fn continuous_loop(args: &Args, session: &Session) -> Result<(), String> {
    let windows: usize = args.flag_or("windows", 4usize)?;
    let scale: f64 = args.flag_or("scale", 0.02f64)?;
    let seed: u64 = args.flag_or("seed", 0x2007_D50Au64)?;
    let threads = parse_threads(args)?;
    let policy_out = args.flag("policy-out").map(str::to_owned);
    if windows < 2 {
        return Err("--windows must be at least 2".into());
    }
    let generator = GeneratorConfig::paper_scale(scale).with_seed(seed);
    let catalog_seed = generator.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0CA7_A106;
    let catalog = generator.catalog.generate(catalog_seed);
    let config = ContinuousLoopConfig {
        windows,
        seed,
        threads,
        faults: parse_fault_plan(args)?,
        ..ContinuousLoopConfig::new(generator.cluster)
    };
    session.info(&format!(
        "running {windows} observation windows of {} machines ...",
        config.cluster.machines
    ));
    // The summary table surfaces pool/fallback counters even without
    // --metrics-out: fall back to a local registry-only handle.
    // Observation is purely passive, so outcomes are identical either way.
    let local_telemetry = if session.telemetry.is_enabled() {
        None
    } else {
        Some(recovery_telemetry::Telemetry::new())
    };
    let telemetry = local_telemetry.as_ref().unwrap_or(&session.telemetry);
    let run = run_loop_with_convergence(&catalog, &config, telemetry, &mut |_| {});
    let outcomes = &run.outcomes;
    println!(
        "{:>6}  {:>9}  {:>10}  {:>8}  {:>9}  status",
        "window", "processes", "mttr", "policy", "entries"
    );
    let baseline = outcomes[0].mttr.as_secs_f64();
    for w in outcomes {
        println!(
            "{:>6}  {:>9}  {:>10}  {:>8}  {:>9}  {}",
            w.window,
            w.processes,
            w.mttr.to_string(),
            if w.learned_policy { "learned" } else { "user" },
            w.policy_entries,
            w.status.label()
        );
    }
    let counter = |name: &str| {
        telemetry
            .registry()
            .map_or(0, |registry| registry.counter(name).get())
    };
    println!(
        "\npool: {} panics, {} retries, {} exhausted | loop: {} fallbacks",
        counter("pool.panics"),
        counter("pool.retries"),
        counter("pool.exhausted"),
        counter("loop.fallbacks"),
    );
    if let Some(last) = outcomes.last() {
        if baseline > 0.0 {
            println!(
                "final window MTTR is {:.1}% of the baseline window",
                100.0 * last.mttr.as_secs_f64() / baseline
            );
        }
    }
    if let Some(out) = policy_out {
        let policy = run
            .policy
            .as_ref()
            .ok_or("--policy-out: no window completed a retraining step, nothing to write")?;
        let text = policy_to_text(policy, catalog.symptoms());
        fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}: {} state-action entries", policy.q().len());
    }
    Ok(())
}

/// Blocks the main thread while the daemon serves: for the given number
/// of seconds when `--serve-for` was passed, forever otherwise (the
/// accept loop runs on its own thread; killing the process is the
/// expected way to stop an unbounded server).
fn linger(serve_for: Option<f64>) {
    match serve_for {
        Some(secs) => std::thread::sleep(Duration::from_secs_f64(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// `autorecover serve` — the policy-serving daemon: expose a trained
/// policy over HTTP (`/advise`, `/simulate`, `/policy`, plus the shared
/// telemetry routes) while hot-reloading it from a live continuous loop
/// or pinning one loaded from a file.
pub fn serve(args: &Args, session: &Session) -> Result<(), String> {
    let listen = args.flag("listen").unwrap_or("127.0.0.1:0").to_owned();
    let serve_for: Option<f64> = match args.flag("serve-for") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--serve-for: cannot parse seconds {v:?}"))?,
        ),
    };
    if serve_for.is_some_and(|s| s < 0.0) {
        return Err("--serve-for must be non-negative".into());
    }
    let max_inflight: usize = args.flag_or("max-inflight", ServeConfig::default().max_inflight)?;
    if max_inflight == 0 {
        return Err("--max-inflight must be at least 1".into());
    }
    // Serving is observability-first: even without --metrics-out the
    // daemon's /metrics, /healthz, and /events routes should be live, so
    // fall back to a local registry+bus handle rather than a disabled one.
    let telemetry = if session.telemetry.is_enabled() {
        session.telemetry.clone()
    } else {
        Telemetry::with_parts(None, Some(EventBus::default()))
    };
    let store = PolicyStore::new();
    let daemon = ServeDaemon::bind(
        &listen,
        store.clone(),
        telemetry.clone(),
        ServeConfig::default().with_max_inflight(max_inflight),
    )
    .map_err(|e| format!("binding {listen}: {e}"))?;
    println!("serving policy API on http://{}", daemon.local_addr());

    if let Some(policy_path) = args.flag("policy") {
        // File mode: pin one policy for the daemon's whole lifetime.
        let policy_text =
            fs::read_to_string(policy_path).map_err(|e| format!("reading {policy_path}: {e}"))?;
        let source = format!("file:{policy_path}");
        let snapshot = if let Some(log_path) = args.flag("log") {
            // A training log gives /simulate its replay plane. Parse it
            // first so policy symptoms resolve to the log's catalog ids.
            let pool = WorkerPool::new(parse_threads(args)?);
            let log_text =
                fs::read_to_string(log_path).map_err(|e| format!("reading {log_path}: {e}"))?;
            let (mut log, quarantine) = ingest::parse_log_with_policy(
                &log_text,
                parse_error_policy(args)?,
                &pool,
                &telemetry,
            )
            .map_err(|e| e.to_string())?;
            if quarantine.skipped() > 0 {
                session.info(&format!(
                    "quarantined {} malformed log lines",
                    quarantine.skipped()
                ));
            }
            let trained: TrainedPolicy =
                policy_from_text(&policy_text, log.symptoms_mut()).map_err(|e| e.to_string())?;
            let processes = ingest::split_processes(&mut log, &pool, &telemetry);
            PolicySnapshot::build(&trained, log.symptoms(), &source, Some(&processes))
        } else {
            let mut symptoms = SymptomCatalog::default();
            let trained: TrainedPolicy =
                policy_from_text(&policy_text, &mut symptoms).map_err(|e| e.to_string())?;
            PolicySnapshot::build(&trained, &symptoms, &source, None)
        };
        let published = publish_snapshot(&store, &telemetry, snapshot);
        println!(
            "published policy v{} ({}): {} entries, {} advised states",
            published.version(),
            published.hash(),
            published.entries(),
            published.advised_states()
        );
        if let Some(health) = telemetry.health() {
            health.set_phase("serving");
        }
        linger(serve_for);
        daemon.shutdown();
        return Ok(());
    }

    // Loop mode: run the continuous loop beside the daemon and hot-swap
    // a fresh snapshot after every successfully retrained window. Knobs,
    // seeding, and fault flags match `autorecover loop` exactly, so an
    // unobserved loop with the same flags reproduces the served policy
    // byte for byte.
    let windows: usize = args.flag_or("windows", 4usize)?;
    let scale: f64 = args.flag_or("scale", 0.02f64)?;
    let seed: u64 = args.flag_or("seed", 0x2007_D50Au64)?;
    let threads = parse_threads(args)?;
    let policy_out = args.flag("policy-out").map(str::to_owned);
    if windows < 2 {
        return Err("--windows must be at least 2".into());
    }
    let generator = GeneratorConfig::paper_scale(scale).with_seed(seed);
    let catalog_seed = generator.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0CA7_A106;
    let catalog = generator.catalog.generate(catalog_seed);
    let config = ContinuousLoopConfig {
        windows,
        seed,
        threads,
        faults: parse_fault_plan(args)?,
        ..ContinuousLoopConfig::new(generator.cluster)
    };
    session.info(&format!(
        "running {windows} observation windows of {} machines beside the daemon ...",
        config.cluster.machines
    ));
    let run = run_loop_with_convergence(&catalog, &config, &telemetry, &mut |publication| {
        if let Some(policy) = publication.policy {
            let snapshot = PolicySnapshot::build(
                policy,
                catalog.symptoms(),
                &format!("window:{}", publication.window),
                Some(publication.accumulated),
            );
            let published = publish_snapshot(&store, &telemetry, snapshot);
            session.info(&format!(
                "window {}: published policy v{} ({})",
                publication.window,
                published.version(),
                published.hash()
            ));
        } else {
            session.info(&format!(
                "window {}: {} — keeping last-good policy v{}",
                publication.window,
                publication.status.label(),
                store.version()
            ));
        }
    });
    println!(
        "loop complete: {} windows, serving policy v{}",
        run.outcomes.len(),
        store.version()
    );
    if let Some(out) = policy_out {
        let policy = run
            .policy
            .as_ref()
            .ok_or("--policy-out: no window completed a retraining step, nothing to write")?;
        let text = policy_to_text(policy, catalog.symptoms());
        fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}: {} state-action entries", policy.q().len());
    }
    // The phase flip is the external signal that the loop (and any
    // --policy-out write) is done and only serving remains.
    if let Some(health) = telemetry.health() {
        health.set_phase("serving");
    }
    linger(serve_for);
    daemon.shutdown();
    Ok(())
}
