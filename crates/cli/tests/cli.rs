//! Integration tests of the `autorecover` binary: every subcommand run
//! end-to-end against a temporary directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autorecover"))
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("autorecover-test-{}-{name}", std::process::id()));
    dir
}

fn generate_log(path: &Path) {
    let out = bin()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--scale",
            "0.01",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_is_an_error() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("autorecover"));
}

#[test]
fn generate_then_inspect_and_mine() {
    let log = tmp("gim.log");
    generate_log(&log);

    let out = bin()
        .args(["inspect", log.to_str().unwrap(), "--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("processes:"), "{text}");
    assert!(text.contains("MTTR:"), "{text}");

    let out = bin()
        .args(["mine", log.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("symptom cohesion"), "{text}");
    assert!(text.contains("noise filter"), "{text}");

    std::fs::remove_file(&log).ok();
}

#[test]
fn train_evaluate_round_trip() {
    let log = tmp("ter.log");
    let policy = tmp("ter.policy");
    generate_log(&log);

    let out = bin()
        .args([
            "train",
            log.to_str().unwrap(),
            "--out",
            policy.to_str().unwrap(),
            "--method",
            "tree",
            "--top",
            "6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let policy_text = std::fs::read_to_string(&policy).unwrap();
    assert!(
        policy_text.starts_with("# autorecover policy v1"),
        "{policy_text}"
    );

    let out = bin()
        .args([
            "evaluate",
            log.to_str().unwrap(),
            "--policy",
            policy.to_str().unwrap(),
            "--top",
            "6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("overall: relative cost"), "{text}");

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&policy).ok();
}

#[test]
fn missing_files_produce_errors_not_panics() {
    let out = bin()
        .args(["inspect", "/nonexistent/path.log"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let out = bin()
        .args([
            "evaluate",
            "/nonexistent.log",
            "--policy",
            "/nonexistent.policy",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn continuous_loop_reports_windows() {
    let out = bin()
        .args(["loop", "--windows", "2", "--scale", "0.005"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("window"), "{text}");
    assert!(text.contains("learned"), "{text}");
    assert!(text.contains("baseline window"), "{text}");

    let out = bin().args(["loop", "--windows", "1"]).output().unwrap();
    assert!(!out.status.success(), "a single window must be rejected");
}

#[test]
fn out_of_range_fraction_is_an_error_not_a_panic() {
    let log = tmp("frac.log");
    generate_log(&log);
    for frac in ["1.0", "0", "-0.3"] {
        let out = bin()
            .args([
                "train",
                log.to_str().unwrap(),
                "--out",
                "/tmp/frac.policy",
                "--fraction",
                frac,
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "fraction {frac} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--fraction"), "fraction {frac}: {err}");
        assert!(!err.contains("panicked"), "fraction {frac} panicked: {err}");
    }
    std::fs::remove_file(&log).ok();
}

/// A minimal structural JSON-object check for one JSONL line: braces
/// balance outside strings, quotes pair up, and the object spans the
/// whole line.
fn assert_json_object(line: &str) {
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' if !in_string => depth += 1,
            '}' if !in_string => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced braces: {line}");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces: {line}");
    assert!(!in_string, "unterminated string: {line}");
}

#[test]
fn metrics_out_writes_jsonl_with_phase_spans() {
    let log = tmp("metrics.log");
    let policy = tmp("metrics.policy");
    let metrics = tmp("metrics.jsonl");
    generate_log(&log);

    let out = bin()
        .args([
            "train",
            log.to_str().unwrap(),
            "--out",
            policy.to_str().unwrap(),
            "--top",
            "4",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    assert!(!text.trim().is_empty(), "metrics file is empty");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        assert_json_object(line);
        assert!(line.contains("\"type\":\""), "{line}");
    }
    // Phase spans of the train pipeline were recorded. `parse_shards`
    // is emitted by the sharded ingestion pipeline on every thread
    // count (the sequential path times its parse under the same name).
    for phase in ["parse_shards", "prepare", "platform_build", "train"] {
        assert!(
            text.contains(&format!("\"name\":\"{phase}\"")),
            "missing span {phase} in:\n{text}"
        );
    }
    // The trainer config and per-type training progress were logged.
    assert!(text.contains("\"type\":\"trainer_config\""), "{text}");
    assert!(text.contains("\"type\":\"training_finished\""), "{text}");
    // The final snapshot carries the sweep counters.
    let snapshot = text
        .lines()
        .find(|l| l.contains("\"type\":\"snapshot\""))
        .expect("snapshot line present");
    assert!(snapshot.contains("train.sweeps"), "{snapshot}");
    assert!(snapshot.contains("platform.attempts"), "{snapshot}");

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&policy).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn log_format_json_renders_progress_as_jsonl() {
    let log = tmp("jsonlog.log");
    let out = bin()
        .args([
            "generate",
            "--out",
            log.to_str().unwrap(),
            "--scale",
            "0.01",
            "--log-format",
            "json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    let mut log_lines = 0;
    for line in stderr.lines().filter(|l| !l.trim().is_empty()) {
        assert_json_object(line);
        assert!(line.contains("\"type\":\"log\""), "{line}");
        log_lines += 1;
    }
    assert!(
        log_lines > 0,
        "expected JSON progress lines, got:\n{stderr}"
    );

    let out = bin()
        .args(["generate", "--out", "/dev/null", "--log-format", "yaml"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown log format must be rejected");

    std::fs::remove_file(&log).ok();
}

#[test]
fn help_documents_threads_flag() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("--threads N"), "{text}");
    assert!(text.contains("sequential path"), "{text}");
}

#[test]
fn threads_zero_or_garbage_is_rejected() {
    let log = tmp("threads0.log");
    generate_log(&log);
    for bad in ["0", "abc", "-2"] {
        let out = bin()
            .args([
                "train",
                log.to_str().unwrap(),
                "--out",
                "/tmp/threads0.policy",
                "--threads",
                bad,
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "--threads {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--threads"), "--threads {bad}: {err}");
        assert!(!err.contains("panicked"), "--threads {bad} panicked: {err}");
    }
    std::fs::remove_file(&log).ok();
}

#[test]
fn threads_one_and_many_train_byte_identical_policies() {
    let log = tmp("threads.log");
    let sequential = tmp("threads-seq.policy");
    let parallel = tmp("threads-par.policy");
    generate_log(&log);

    for (threads, path) in [("1", &sequential), ("3", &parallel)] {
        let out = bin()
            .args([
                "train",
                log.to_str().unwrap(),
                "--out",
                path.to_str().unwrap(),
                "--top",
                "4",
                "--threads",
                threads,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let seq_text = std::fs::read_to_string(&sequential).unwrap();
    let par_text = std::fs::read_to_string(&parallel).unwrap();
    assert!(
        seq_text == par_text,
        "policies trained with --threads 1 and --threads 3 must be byte-identical"
    );
    assert!(
        seq_text.starts_with("# autorecover policy v1"),
        "{seq_text}"
    );

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&sequential).ok();
    std::fs::remove_file(&parallel).ok();
}

#[test]
fn train_rejects_unknown_method() {
    let log = tmp("method.log");
    generate_log(&log);
    let out = bin()
        .args([
            "train",
            log.to_str().unwrap(),
            "--out",
            "/tmp/x.policy",
            "--method",
            "magic",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --method"));
    std::fs::remove_file(&log).ok();
}

#[test]
fn explain_and_diff_policy_commands() {
    let log = tmp("exp.log");
    let policy = tmp("exp.policy");
    generate_log(&log);
    let out = bin()
        .args([
            "train",
            log.to_str().unwrap(),
            "--out",
            policy.to_str().unwrap(),
            "--top",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["explain", policy.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("states,"), "{text}");
    // Text-format policies carry no visit counts; explain must say so
    // instead of flagging every state as low-visits.
    assert!(text.contains("visit counts unavailable"), "{text}");

    let out = bin()
        .args(["explain", policy.to_str().unwrap(), "--json", "true"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout).to_string();
    assert_json_object(json.trim());
    assert!(json.starts_with("{\"visits_available\":false"), "{json}");

    // A policy diffed against itself is empty.
    let out = bin()
        .args([
            "diff-policy",
            policy.to_str().unwrap(),
            policy.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.starts_with("0 added, 0 removed, 0 flipped"), "{text}");

    let out = bin()
        .args([
            "diff-policy",
            policy.to_str().unwrap(),
            policy.to_str().unwrap(),
            "--json",
            "true",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout).to_string();
    assert_json_object(json.trim());
    assert!(
        json.contains("\"schema\":\"autorecover.policy-diff.v1\""),
        "{json}"
    );

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&policy).ok();
}

#[test]
fn report_diagnostics_out_writes_run_reports() {
    let log = tmp("diag.log");
    let dir = tmp("diag-out");
    generate_log(&log);
    let out = bin()
        .args([
            "report",
            log.to_str().unwrap(),
            "--fast",
            "true",
            "--top",
            "4",
            "--threads",
            "2",
            "--diagnostics-out",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // One report per training fraction, in three renderings each.
    for fraction in ["20", "40", "60", "80"] {
        for ext in ["json", "md", "html"] {
            let path = dir.join(format!("run-report-f{fraction}.{ext}"));
            assert!(path.is_file(), "missing {}", path.display());
        }
    }
    let json = std::fs::read_to_string(dir.join("run-report-f40.json")).unwrap();
    assert_json_object(json.trim());
    assert!(
        json.starts_with("{\"schema\":\"autorecover.run-report.v1\""),
        "{json}"
    );
    assert!(json.contains("\"q_delta_curve\""), "{json}");
    let md = std::fs::read_to_string(dir.join("run-report-f40.md")).unwrap();
    assert!(md.contains("# Training run report"), "{md}");
    assert!(md.contains("| trained |"), "{md}");

    std::fs::remove_file(&log).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn on_parse_error_selects_the_ingestion_policy() {
    let log = tmp("ope.log");
    generate_log(&log);
    // Corrupt one content line in place.
    let text = std::fs::read_to_string(&log).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let victim = lines.len() / 2;
    lines[victim] = "this line is not a log entry".into();
    std::fs::write(&log, lines.join("\n")).unwrap();

    // Default (strict) mode fails with the parse error.
    let out = bin()
        .args(["inspect", log.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "strict mode must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parsing"), "{err}");

    // skip and quarantine both survive the corrupted line.
    for mode in ["skip", "quarantine"] {
        let out = bin()
            .args(["inspect", log.to_str().unwrap(), "--on-parse-error", mode])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{mode}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("skipped 1 malformed"), "{mode}: {err}");
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(text.contains("processes:"), "{mode}: {text}");
    }

    // Unknown modes are rejected up front.
    let out = bin()
        .args([
            "inspect",
            log.to_str().unwrap(),
            "--on-parse-error",
            "lenient",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown parse-error policy"), "{err}");

    std::fs::remove_file(&log).ok();
}

#[test]
fn help_documents_on_parse_error_flag() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--on-parse-error"), "{text}");
    assert!(text.contains("quarantine"), "{text}");
}

#[test]
fn loop_table_reports_window_status() {
    let out = bin()
        .args(["loop", "--windows", "2", "--scale", "0.005"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("status"), "{text}");
    assert!(text.contains("trained"), "{text}");
}

#[test]
fn loop_summary_includes_pool_and_fallback_counters() {
    let out = bin()
        .args(["loop", "--windows", "2", "--scale", "0.005"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("pool: "), "{text}");
    assert!(text.contains("panics"), "{text}");
    assert!(text.contains("retries"), "{text}");
    assert!(text.contains("exhausted"), "{text}");
    assert!(text.contains("fallbacks"), "{text}");
}

/// The CLI-level purity check of the live observability plane: a loop
/// run with the exposition server up (`--metrics-listen`) must write a
/// byte-identical final policy to the same run without it.
#[test]
fn loop_with_metrics_listen_writes_byte_identical_policy() {
    let plain = tmp("listen-off.policy");
    let listened = tmp("listen-on.policy");

    let out = bin()
        .args([
            "loop",
            "--windows",
            "2",
            "--scale",
            "0.005",
            "--policy-out",
            plain.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args([
            "loop",
            "--windows",
            "2",
            "--scale",
            "0.005",
            "--policy-out",
            listened.to_str().unwrap(),
            "--metrics-listen",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("serving live metrics on http://127.0.0.1:"),
        "{stderr}"
    );

    let plain_text = std::fs::read_to_string(&plain).unwrap();
    let listened_text = std::fs::read_to_string(&listened).unwrap();
    assert!(
        plain_text.starts_with("# autorecover policy v1"),
        "{plain_text}"
    );
    assert!(
        plain_text == listened_text,
        "--metrics-listen changed the loop's final policy bytes"
    );

    std::fs::remove_file(&plain).ok();
    std::fs::remove_file(&listened).ok();
}

#[test]
fn watch_renders_window_rows_from_a_metrics_file() {
    let metrics = tmp("watch.jsonl");
    let out = bin()
        .args([
            "loop",
            "--windows",
            "2",
            "--scale",
            "0.005",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["watch", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    // The column header, one row per window, and the rolled-up footer.
    assert!(text.contains("window  processes"), "{text}");
    assert!(text.contains("status"), "{text}");
    assert!(text.contains("windows: 2 | fallbacks:"), "{text}");
    assert!(text.contains("converged types:"), "{text}");

    std::fs::remove_file(&metrics).ok();
}

#[test]
fn watch_rejects_missing_sources_cleanly() {
    let out = bin()
        .args(["watch", "/nonexistent/metrics.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");
    assert!(!err.contains("panicked"), "{err}");

    let out = bin().args(["watch"]).output().unwrap();
    assert!(!out.status.success(), "watch without a source must fail");
}

#[test]
fn help_documents_the_observability_plane() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("--metrics-listen ADDR"), "{text}");
    assert!(text.contains("--serve-linger SECS"), "{text}");
    assert!(text.contains("/metrics"), "{text}");
    assert!(text.contains("/healthz"), "{text}");
    assert!(text.contains("watch SOURCE"), "{text}");
}
