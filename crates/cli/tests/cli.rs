//! Integration tests of the `autorecover` binary: every subcommand run
//! end-to-end against a temporary directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autorecover"))
}

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("autorecover-test-{}-{name}", std::process::id()));
    dir
}

fn generate_log(path: &Path) {
    let out = bin()
        .args([
            "generate",
            "--out",
            path.to_str().unwrap(),
            "--scale",
            "0.01",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_is_an_error() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("autorecover"));
}

#[test]
fn generate_then_inspect_and_mine() {
    let log = tmp("gim.log");
    generate_log(&log);

    let out = bin()
        .args(["inspect", log.to_str().unwrap(), "--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("processes:"), "{text}");
    assert!(text.contains("MTTR:"), "{text}");

    let out = bin()
        .args(["mine", log.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("symptom cohesion"), "{text}");
    assert!(text.contains("noise filter"), "{text}");

    std::fs::remove_file(&log).ok();
}

#[test]
fn train_evaluate_round_trip() {
    let log = tmp("ter.log");
    let policy = tmp("ter.policy");
    generate_log(&log);

    let out = bin()
        .args([
            "train",
            log.to_str().unwrap(),
            "--out",
            policy.to_str().unwrap(),
            "--method",
            "tree",
            "--top",
            "6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let policy_text = std::fs::read_to_string(&policy).unwrap();
    assert!(
        policy_text.starts_with("# autorecover policy v1"),
        "{policy_text}"
    );

    let out = bin()
        .args([
            "evaluate",
            log.to_str().unwrap(),
            "--policy",
            policy.to_str().unwrap(),
            "--top",
            "6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("overall: relative cost"), "{text}");

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&policy).ok();
}

#[test]
fn missing_files_produce_errors_not_panics() {
    let out = bin()
        .args(["inspect", "/nonexistent/path.log"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let out = bin()
        .args([
            "evaluate",
            "/nonexistent.log",
            "--policy",
            "/nonexistent.policy",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn continuous_loop_reports_windows() {
    let out = bin()
        .args(["loop", "--windows", "2", "--scale", "0.005"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("window"), "{text}");
    assert!(text.contains("learned"), "{text}");
    assert!(text.contains("baseline window"), "{text}");

    let out = bin().args(["loop", "--windows", "1"]).output().unwrap();
    assert!(!out.status.success(), "a single window must be rejected");
}

#[test]
fn out_of_range_fraction_is_an_error_not_a_panic() {
    let log = tmp("frac.log");
    generate_log(&log);
    for frac in ["1.0", "0", "-0.3"] {
        let out = bin()
            .args([
                "train",
                log.to_str().unwrap(),
                "--out",
                "/tmp/frac.policy",
                "--fraction",
                frac,
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "fraction {frac} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--fraction"), "fraction {frac}: {err}");
        assert!(!err.contains("panicked"), "fraction {frac} panicked: {err}");
    }
    std::fs::remove_file(&log).ok();
}

#[test]
fn train_rejects_unknown_method() {
    let log = tmp("method.log");
    generate_log(&log);
    let out = bin()
        .args([
            "train",
            log.to_str().unwrap(),
            "--out",
            "/tmp/x.policy",
            "--method",
            "magic",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --method"));
    std::fs::remove_file(&log).ok();
}
