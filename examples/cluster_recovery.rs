//! Live deployment scenario: train a recovery policy offline from one
//! observation window, deploy it as the *live* recovery controller of the
//! cluster, and measure the realized MTTR against the production
//! cheapest-first policy over the next window.
//!
//! This is the closed loop the paper's Figure 1 sketches: event
//! monitoring feeds a recovery log, offline policy generation learns from
//! it, and the learned policy drives error recovery from then on.
//!
//! Run with: `cargo run --release --example cluster_recovery`

use recovery_core::experiment::ExperimentContext;
use recovery_core::policy::{HybridPolicy, LivePolicy, UserStatePolicy};
use recovery_core::selection_tree::{SelectionTreeConfig, SelectionTreeTrainer};
use recovery_core::trainer::{OfflineTrainer, TrainerConfig};
use recovery_simlog::{
    stats, ClusterConfig, ClusterSim, GeneratorConfig, LogGenerator, SimDuration, UserDefinedPolicy,
};

fn main() {
    // --- Month 0-2: the production policy runs and the log accumulates.
    let config = GeneratorConfig {
        cluster: ClusterConfig {
            machines: 150,
            horizon: SimDuration::from_days(60),
            mean_fault_interarrival: SimDuration::from_days(4),
            ..ClusterConfig::default()
        },
        ..GeneratorConfig::paper_scale(0.1)
    };
    let mut generated = LogGenerator::new(config.clone()).generate();
    let processes = generated.log.split_processes();
    println!(
        "observation window: {} processes, MTTR under the production policy {}",
        processes.len(),
        stats::mttr(&processes)
    );

    // --- Offline policy generation from the accumulated log.
    let ctx = ExperimentContext::prepare(processes, 0.1, 40);
    let trainer = OfflineTrainer::new(&ctx.clean, TrainerConfig::default());
    let tree = SelectionTreeTrainer::new(&trainer, SelectionTreeConfig::default());
    let (trained, train_stats) = tree.train(&ctx.types);
    println!(
        "learned policies for {} error types ({} Q entries)",
        train_stats.len(),
        trained.q().len()
    );

    // --- Month 2-4: deploy. The hybrid keeps the user ladder as the
    //     safety net for anything the table does not know.
    let live = LivePolicy::new(HybridPolicy::new(trained, UserStatePolicy::default()));
    let catalog_seed = config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x0CA7_A106;
    let catalog = config.catalog.generate(catalog_seed);
    let next_window = ClusterConfig {
        ..config.cluster.clone()
    };

    let (mut log_trained, _) = ClusterSim::new(&catalog, live, next_window.clone(), 0xDEB7).run();
    let trained_procs = log_trained.split_processes();
    let trained_mttr = stats::mttr(&trained_procs);

    // The counterfactual: the same window under the production policy.
    let (mut log_user, _) =
        ClusterSim::new(&catalog, UserDefinedPolicy::default(), next_window, 0xDEB7).run();
    let user_procs = log_user.split_processes();
    let user_mttr = stats::mttr(&user_procs);

    println!();
    println!(
        "next window under the production policy: MTTR {user_mttr}  ({} processes)",
        user_procs.len()
    );
    println!(
        "next window under the learned policy:    MTTR {trained_mttr}  ({} processes)",
        trained_procs.len()
    );
    let ratio = trained_mttr.as_secs_f64() / user_mttr.as_secs_f64();
    println!(
        "realized downtime ratio: {:.1}% ({}% saved — the paper reports >10% on its cluster)",
        100.0 * ratio,
        (100.0 * (1.0 - ratio)).round()
    );
}
