//! Environment drift and retraining: the paper claims a learning-based
//! approach "can adapt to the change of the environment without human
//! involvement" (§1). This example demonstrates it:
//!
//! 1. train a policy on a log from the original cluster;
//! 2. the environment drifts — a previously escalation-friendly error
//!    type turns *deceptive* (say, a driver update breaks reboots for
//!    it, so only a reimage helps);
//! 3. the stale policy keeps wasting cheap actions on the drifted type;
//!    retraining on the newly accumulated log repairs the policy — no
//!    operator rule-editing involved.
//!
//! Run with: `cargo run --release --example online_adaptation`

use recovery_core::evaluate::{evaluate, time_ordered_split};
use recovery_core::experiment::ExperimentContext;
use recovery_core::platform::{CostEstimation, SimulationPlatform};
use recovery_core::policy::{HybridPolicy, UserStatePolicy};
use recovery_core::selection_tree::{SelectionTreeConfig, SelectionTreeTrainer};
use recovery_core::trainer::{OfflineTrainer, TrainerConfig};
use recovery_simlog::{CatalogConfig, GeneratorConfig, LogGenerator};

fn policy_for(
    ctx: &ExperimentContext,
) -> (
    recovery_core::policy::TrainedPolicy,
    Vec<recovery_core::trainer::TypeTrainingStats>,
) {
    let trainer = OfflineTrainer::new(&ctx.clean, TrainerConfig::default());
    SelectionTreeTrainer::new(&trainer, SelectionTreeConfig::default()).train(&ctx.types)
}

fn main() {
    // --- Phase 1: the original environment. ---
    let before_config = GeneratorConfig::paper_scale(0.05);
    let mut before = LogGenerator::new(before_config.clone()).generate();
    let before_ctx = ExperimentContext::prepare(before.log.split_processes(), 0.1, 20);
    let (stale_policy, _) = policy_for(&before_ctx);
    println!(
        "phase 1: trained on {} processes from the original environment",
        before_ctx.clean.len()
    );

    // --- Phase 2: drift. Frequency rank 1 (the second most common type)
    //     becomes deceptive on top of the default deceptive ranks.
    let drifted_catalog = CatalogConfig::default().with_deceptive_ranks(vec![0, 1, 34, 38]);
    let after_config = GeneratorConfig {
        catalog: drifted_catalog,
        ..before_config
    }
    .with_seed(0xD21F7);
    let mut after = LogGenerator::new(after_config).generate();
    let after_ctx = ExperimentContext::prepare(after.log.split_processes(), 0.1, 20);
    println!(
        "phase 2: environment drifted; {} new processes accumulated",
        after_ctx.clean.len()
    );

    // Evaluate both policies against the drifted environment's log.
    let (reference, test) = time_ordered_split(&after_ctx.clean, 0.4);
    let platform = SimulationPlatform::from_processes(reference, CostEstimation::AverageOnly);
    let fallback = UserStatePolicy::default();

    let stale = HybridPolicy::new(stale_policy, fallback);
    let stale_report = evaluate(&stale, &platform, test, &after_ctx.types, 20);

    // Retrain on the drifted log's own training window — the automated
    // response to drift.
    let retrain_trainer = OfflineTrainer::new(reference, TrainerConfig::default());
    let (fresh_policy, _) =
        SelectionTreeTrainer::new(&retrain_trainer, SelectionTreeConfig::default())
            .train(&after_ctx.types);
    let fresh = HybridPolicy::new(fresh_policy, fallback);
    let fresh_report = evaluate(&fresh, &platform, test, &after_ctx.types, 20);

    let user_report = evaluate(&fallback, &platform, test, &after_ctx.types, 20);

    println!();
    println!(
        "user-defined policy on the drifted cluster:   {:>6.2}% relative downtime",
        100.0 * user_report.overall_relative_cost()
    );
    println!(
        "stale learned policy (trained before drift):  {:>6.2}% relative downtime",
        100.0 * stale_report.overall_relative_cost()
    );
    println!(
        "retrained policy (after drift, no operator):  {:>6.2}% relative downtime",
        100.0 * fresh_report.overall_relative_cost()
    );
    let recovered = stale_report.overall_relative_cost() - fresh_report.overall_relative_cost();
    println!(
        "\nretraining recovered {:.1} percentage points of downtime automatically",
        100.0 * recovered
    );
}
