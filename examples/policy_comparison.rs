//! Policy shoot-out: every policy in the workspace evaluated on the same
//! held-out test set — the user-defined ladder, tabular Q-learning,
//! the selection-tree scan, the linear Q-approximation extension, and the
//! per-type exact-DP oracle (the best any replay policy can do on the
//! training evidence).
//!
//! Run with: `cargo run --release --example policy_comparison`

use recovery_core::approx::{train_linear, LinearConfig, LinearPolicy};
use recovery_core::evaluate::{evaluate, time_ordered_split};
use recovery_core::exact::EmpiricalTypeModel;
use recovery_core::experiment::ExperimentContext;
use recovery_core::platform::{CostEstimation, SimulationPlatform};
use recovery_core::policy::{DecidePolicy, UserStatePolicy};
use recovery_core::selection_tree::{SelectionTreeConfig, SelectionTreeTrainer};
use recovery_core::state::RecoveryState;
use recovery_core::trainer::{OfflineTrainer, TrainerConfig};
use recovery_simlog::{GeneratorConfig, LogGenerator, RepairAction};

/// Wraps per-type exact DP solutions as one policy (the oracle).
#[derive(Debug, Default)]
struct OraclePolicy {
    solutions: Vec<recovery_core::exact::ExactSolution>,
}

impl DecidePolicy for OraclePolicy {
    fn decide(&self, state: &RecoveryState) -> Option<RepairAction> {
        self.solutions.iter().find_map(|s| s.decide(state))
    }
    fn name(&self) -> &str {
        "exact-dp-oracle"
    }
}

fn main() {
    let mut generated = LogGenerator::new(GeneratorConfig::paper_scale(0.05)).generate();
    let processes = generated.log.split_processes();
    let ctx = ExperimentContext::prepare(processes, 0.1, 20);
    let (train, test) = time_ordered_split(&ctx.clean, 0.4);
    println!(
        "{} training / {} test processes, {} types",
        train.len(),
        test.len(),
        ctx.types.len()
    );

    let trainer = OfflineTrainer::new(train, TrainerConfig::default());

    // Tabular Q-learning (the paper's §3 method).
    eprintln!("training tabular Q-learning ...");
    let (tabular, _) = trainer.train(&ctx.types);

    // Selection-tree accelerated training (the paper's §5.3 method).
    eprintln!("training with the selection tree ...");
    let tree = SelectionTreeTrainer::new(&trainer, SelectionTreeConfig::default());
    let (tree_policy, _) = tree.train(&ctx.types);

    // Linear Q-approximation (the paper's §7 future-work extension).
    eprintln!("training the linear approximation ...");
    let mut linear = LinearPolicy::new();
    for &et in &ctx.types {
        if let Some(model) = train_linear(&trainer, et, &LinearConfig::default()) {
            linear.insert(model);
        }
    }

    // The exact-DP oracle over the same training evidence.
    let mut oracle = OraclePolicy::default();
    for &et in &ctx.types {
        let procs = trainer.processes_of(et);
        if !procs.is_empty() {
            let model = EmpiricalTypeModel::new(et, procs, trainer.platform());
            oracle.solutions.push(model.optimal(20));
        }
    }

    let platform = SimulationPlatform::from_processes(train, CostEstimation::AverageOnly);
    println!("\n{:<18} {:>10} {:>10}", "policy", "relative", "coverage");
    let user = UserStatePolicy::default();
    let rows: Vec<(&str, &dyn DecidePolicy)> = vec![
        ("user-defined", &user),
        ("tabular-q", &tabular),
        ("selection-tree", &tree_policy),
        ("linear-approx", &linear),
        ("exact-dp-oracle", &oracle),
    ];
    for (name, policy) in &rows {
        let report = evaluate(*policy, &platform, test, &ctx.types, 20);
        println!(
            "{:<18} {:>9.2}% {:>9.1}%",
            name,
            100.0 * report.overall_relative_cost(),
            100.0 * report.overall_coverage()
        );
    }
    println!(
        "\n(relative = estimated downtime / actual downtime on handled cases; lower is better)"
    );

    // Show the first-action choices for the most frequent (deceptive) type:
    // the learned policies should jump straight to the strong action.
    let s0 = RecoveryState::initial(ctx.types[0]);
    println!("\nfirst action for the most frequent error type:");
    for (name, policy) in &rows {
        println!("  {:<18} {:?}", name, policy.decide(&s0));
    }
}
