//! Quickstart: the whole pipeline in ~40 lines.
//!
//! Generates a small synthetic cluster recovery log, filters noisy
//! processes, trains a recovery policy offline with the selection-tree
//! accelerator, and evaluates it against the held-out tail of the log.
//!
//! Run with: `cargo run --release --example quickstart`

use recovery_core::evaluate::{evaluate, time_ordered_split};
use recovery_core::experiment::ExperimentContext;
use recovery_core::platform::{CostEstimation, SimulationPlatform};
use recovery_core::policy::{HybridPolicy, UserStatePolicy};
use recovery_core::selection_tree::{SelectionTreeConfig, SelectionTreeTrainer};
use recovery_core::trainer::{OfflineTrainer, TrainerConfig};
use recovery_simlog::{GeneratorConfig, LogGenerator};

fn main() {
    // 1. A recovery log, as event monitoring would have recorded it.
    //    (In production this would be parsed from disk with
    //    `RecoveryLog::from_text`.)
    let mut generated = LogGenerator::new(GeneratorConfig::small()).generate();
    let processes = generated.log.split_processes();
    println!(
        "log: {} entries, {} recovery processes",
        generated.log.len(),
        processes.len()
    );

    // 2. Infer error types and filter noisy multi-fault processes.
    let ctx = ExperimentContext::prepare(processes, 0.1, 10);
    println!(
        "noise filter kept {:.1}% of processes; {} error types selected",
        100.0 * ctx.kept_fraction(),
        ctx.types.len()
    );

    // 3. Train on the first 40% of the log (by time).
    let (train, test) = time_ordered_split(&ctx.clean, 0.4);
    let trainer = OfflineTrainer::new(train, TrainerConfig::default());
    let tree = SelectionTreeTrainer::new(&trainer, SelectionTreeConfig::default());
    let (trained, stats) = tree.train(&ctx.types);
    let sweeps: u64 = stats.iter().map(|s| s.sweeps).sum();
    println!("trained {} types in {sweeps} sweeps", stats.len());

    // 4. Evaluate on the held-out 60%, with the user-policy fallback.
    let platform = SimulationPlatform::from_processes(train, CostEstimation::AverageOnly);
    let hybrid = HybridPolicy::new(trained, UserStatePolicy::default());
    let report = evaluate(&hybrid, &platform, test, &ctx.types, 20);
    println!(
        "hybrid policy downtime: {:.2}% of the user-defined policy (coverage {:.1}%)",
        100.0 * report.overall_relative_cost(),
        100.0 * report.overall_coverage()
    );
}
